// Package parsweep executes independent sweep points in parallel with
// deterministic, input-order result collection.
//
// Every table and figure regeneration in this repository is a grid of
// fully independent simulation runs: each cell builds its own sim.New
// engine, so no state is shared between cells and any execution order
// produces the same per-cell results. Run exploits that independence to
// fan cells across OS threads while keeping the *collected* output
// byte-identical to a sequential loop: results land at the index of
// their input point, and the error returned is the one a sequential
// loop would have hit first (the lowest-index failure observed).
//
// Determinism contract: fn must derive all randomness from its point
// (typically via Seed) and must not share mutable state across calls.
// Under that contract Run(ctx, pts, w, fn) returns the same slice for
// every w ≥ 1.
package parsweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers normalizes a worker-count request: n ≥ 1 is used as given,
// anything else selects one worker per available CPU.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// clampWorkers caps a worker request at the number of OS threads the
// runtime will actually run in parallel. Beyond that cap extra workers
// only add goroutine churn and claim-lock contention — on a 1-CPU
// machine a 4-worker pool was measurably *slower* than the sequential
// loop — and because results are byte-identical for any worker count,
// capping is free. The cap never drops a request below 1.
func clampWorkers(n int) int {
	if p := runtime.GOMAXPROCS(0); n > p {
		return p
	}
	return n
}

// PanicError is a panic from a sweep function, captured and converted
// to that point's error instead of crashing the whole process: a single
// misbehaving cell must not throw away every other cell's work.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parsweep: cell panicked: %v", p.Value)
}

// CellError attributes a failure to one sweep point. RunPartial reports
// every failed index as a CellError so callers can retry, skip or
// persist around individual cells; Unwrap exposes the cause for
// errors.Is/As classification (transient faults, timeouts, panics).
type CellError struct {
	// Index is the failed point's position in the input slice.
	Index int
	// Err is the cause: fn's error, a *PanicError, or the context error
	// for points never attempted after cancellation.
	Err error
}

// Error implements error.
func (c *CellError) Error() string {
	return fmt.Sprintf("parsweep: cell %d: %v", c.Index, c.Err)
}

// Unwrap exposes the cause.
func (c *CellError) Unwrap() error { return c.Err }

// FirstError returns the lowest-index non-nil error from a RunPartial
// error slice — the error a sequential, abort-on-first-failure loop
// would have reported — or nil when every cell succeeded.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall invokes fn(p), converting a panic into a *PanicError so one
// exploding cell surfaces as that point's error instead of killing the
// process.
func safeCall[P, R any](fn func(P) (R, error), p P) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(p)
}

// Run evaluates fn over points and returns the results in input order.
// workers ≤ 1 runs sequentially on the calling goroutine, stopping at
// the first error exactly like a plain loop (results past the failed
// point are zero values). workers > 1 fans the points over that many
// goroutines; the first error cancels the remaining points and is
// reported as the lowest-index error among those observed, so a
// deterministic fn yields a deterministic error too. A canceled ctx
// stops the sweep and returns the context error unless a point error
// takes precedence. A panicking fn is recovered and surfaces as that
// point's error (a *PanicError), with the same lowest-index semantics
// as any other failure.
func Run[P, R any](ctx context.Context, points []P, workers int, fn func(P) (R, error)) ([]R, error) {
	results := make([]R, len(points))
	if len(points) == 0 {
		return results, ctx.Err()
	}
	if workers > len(points) {
		workers = len(points)
	}
	workers = clampWorkers(workers)
	if workers <= 1 {
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := safeCall(fn, p)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(points) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i, ok := claim()
				if !ok {
					return
				}
				r, err := safeCall(fn, points[i])
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// RunPartial evaluates fn over points like Run but never aborts the
// sweep on failure: every point is attempted, results land at their
// input index, and errs[i] carries point i's failure as a *CellError
// (nil for successes). Panics are isolated per point exactly as in Run.
// This is the graceful-degradation contract durable sweeps need — one
// crashing, hanging or faulted cell costs exactly that cell, and every
// finished cell's result is returned.
//
// A canceled ctx stops claiming new points; points never attempted get
// a *CellError wrapping the context error, so the caller can tell
// "failed" from "not reached" and a resumed sweep knows exactly what
// remains. workers follows Run's rules (≤ 1 sequential, capped at
// len(points)).
func RunPartial[P, R any](ctx context.Context, points []P, workers int, fn func(P) (R, error)) ([]R, []error) {
	results := make([]R, len(points))
	errs := make([]error, len(points))
	if len(points) == 0 {
		return results, errs
	}
	if workers > len(points) {
		workers = len(points)
	}
	workers = clampWorkers(workers)
	attempt := func(i int) {
		r, err := safeCall(fn, points[i])
		if err != nil {
			errs[i] = &CellError{Index: i, Err: err}
			return
		}
		results[i] = r
	}
	if workers <= 1 {
		for i := range points {
			if err := ctx.Err(); err != nil {
				errs[i] = &CellError{Index: i, Err: err}
				continue
			}
			attempt(i)
		}
		return results, errs
	}

	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(points) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = &CellError{Index: i, Err: err}
					continue
				}
				attempt(i)
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// Seed mixes a base seed with sweep-cell coordinates into an
// independent, deterministic derived seed. Adjacent bases and adjacent
// coordinates yield statistically unrelated streams (splitmix64
// finalization per component), so every (cell, iteration) pair gets its
// own RNG stream instead of the base±small-offset seeds that made
// sibling cells correlated. Zero is never returned: the simulation
// entry points treat seed 0 as "use the default".
func Seed(base int64, coords ...int64) int64 {
	h := mix64(uint64(base) ^ 0x9e3779b97f4a7c15)
	for _, c := range coords {
		// h is already avalanched, so folding the raw (offset)
		// coordinate in by XOR cannot cancel structurally.
		h = mix64(h ^ (uint64(c) + 0x9e3779b97f4a7c15))
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return int64(h)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
