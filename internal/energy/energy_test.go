package energy

import (
	"math"
	"testing"

	"smistudy/internal/cpu"
	"smistudy/internal/sim"
)

func node(seed int64) (*sim.Engine, *cpu.Model) {
	e := sim.New(seed)
	m := cpu.MustNew(e, cpu.Params{
		PhysCores: 4, HTT: false, BaseHz: 1e9, MissPenalty: 100, SMTEfficiency: 0.9,
	})
	return e, m
}

func TestIdleEnergy(t *testing.T) {
	e, m := node(1)
	meter := NewMeter(e, m, PowerModel{Idle: 100, ActivePerCore: 10, SMMPerCore: 12})
	e.At(10*sim.Second, func() {
		r := meter.Read()
		if math.Abs(r.Joules-1000) > 1e-6 {
			t.Errorf("idle 10s at 100W = %vJ, want 1000", r.Joules)
		}
		if r.BusyJoules != 0 || r.SMMJoules != 0 {
			t.Error("idle node billed active/SMM energy")
		}
		if math.Abs(r.MeanWatts-100) > 1e-9 {
			t.Errorf("mean watts = %v", r.MeanWatts)
		}
	})
	e.Run()
}

func TestBusyEnergy(t *testing.T) {
	e, m := node(1)
	meter := NewMeter(e, m, PowerModel{Idle: 100, ActivePerCore: 10, SMMPerCore: 12})
	th := m.NewThread("t", cpu.Profile{CPI: 1})
	m.StartCompute(th, 1e9, nil) // busy 1 core for 1s
	e.At(2*sim.Second, func() {
		r := meter.Read()
		want := 100.0*2 + 10.0*1 // idle + one core-second
		if math.Abs(r.Joules-want) > 1e-6 {
			t.Errorf("energy = %vJ, want %v", r.Joules, want)
		}
	})
	e.Run()
}

func TestSMMEnergy(t *testing.T) {
	e, m := node(1)
	meter := NewMeter(e, m, PowerModel{Idle: 100, ActivePerCore: 10, SMMPerCore: 12})
	e.At(sim.Second, m.Stall)
	e.At(2*sim.Second, m.Unstall)
	e.At(3*sim.Second, func() {
		r := meter.Read()
		// 1s of SMM at 4 online CPUs × 12W.
		if math.Abs(r.SMMJoules-48) > 1e-6 {
			t.Errorf("SMM energy = %vJ, want 48", r.SMMJoules)
		}
	})
	e.Run()
}

// Reproduces the prior work's headline: the same work costs more energy
// under SMIs.
func TestSMIsRaiseEnergyPerWork(t *testing.T) {
	run := func(withSMIs bool) float64 {
		e, m := node(1)
		meter := NewMeter(e, m, NehalemServer())
		const work = 4e9
		done := false
		for i := 0; i < 4; i++ {
			th := m.NewThread("t", cpu.Profile{CPI: 1})
			m.StartCompute(th, work/4, func() { done = true })
		}
		if withSMIs {
			// 100ms stall every second.
			var arm func(at sim.Time)
			arm = func(at sim.Time) {
				e.At(at, func() {
					if done {
						return
					}
					m.Stall()
					e.After(100*sim.Millisecond, m.Unstall)
					arm(at + sim.Second)
				})
			}
			arm(500 * sim.Millisecond)
		}
		e.Run()
		return meter.EnergyPerWork(work)
	}
	quiet := run(false)
	noisy := run(true)
	if noisy <= quiet {
		t.Fatalf("energy per op with SMIs (%.3g J) not above quiet (%.3g J)", noisy, quiet)
	}
}

func TestMeterAttachMidRun(t *testing.T) {
	e, m := node(1)
	th := m.NewThread("t", cpu.Profile{CPI: 1})
	m.StartCompute(th, 5e9, nil)
	var meter *Meter
	e.At(2*sim.Second, func() {
		meter = NewMeter(e, m, PowerModel{Idle: 0, ActivePerCore: 10, SMMPerCore: 0})
	})
	e.At(3*sim.Second, func() {
		r := meter.Read()
		// Only 1 core-second after attachment.
		if math.Abs(r.Joules-10) > 1e-6 {
			t.Errorf("mid-run meter billed %vJ, want 10", r.Joules)
		}
	})
	e.Run()
}

func TestEnergyPerWorkZero(t *testing.T) {
	e, m := node(1)
	meter := NewMeter(e, m, NehalemServer())
	if meter.EnergyPerWork(0) != 0 {
		t.Fatal("zero work should yield zero")
	}
}

func TestNehalemPreset(t *testing.T) {
	p := NehalemServer()
	if p.Idle <= 0 || p.ActivePerCore <= 0 || p.SMMPerCore < p.ActivePerCore {
		t.Fatalf("implausible preset: %+v", p)
	}
}
