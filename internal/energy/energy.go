// Package energy models node power draw, reproducing the prior work's
// finding (Delgado & Karavanic, IISWC'13) that SMM residency increases
// energy consumption: during an SMI every core spins at full power in
// the handler while doing no application work, so energy per unit of
// useful work rises with SMM residency.
//
// The meter integrates exactly (no sampling): the cpu model already
// accounts per-logical-CPU busy time and node stall time, so energy is
// a closed-form function of those counters at any instant.
package energy

import (
	"smistudy/internal/cpu"
	"smistudy/internal/sim"
)

// PowerModel is a node's power parameters, in watts.
type PowerModel struct {
	// Idle is the node's floor draw (fans, DRAM refresh, uncore).
	Idle float64
	// ActivePerCore is the extra draw of one busy logical CPU.
	ActivePerCore float64
	// SMMPerCore is the extra draw of one online logical CPU while the
	// node is in SMM. Handlers poll and spin: this is close to (often
	// above) ActivePerCore, which is why SMM burns energy without
	// doing work.
	SMMPerCore float64
}

// NehalemServer resembles the paper's Xeon E5520/E5620 boxes: ~150 W
// idle, ~12 W per busy logical CPU, ~14 W per CPU in SMM.
func NehalemServer() PowerModel {
	return PowerModel{Idle: 150, ActivePerCore: 12, SMMPerCore: 14}
}

// Meter measures one node's energy.
type Meter struct {
	eng    *sim.Engine
	cpu    *cpu.Model
	model  PowerModel
	start  sim.Time
	busy0  sim.Time
	stall0 sim.Time
}

// NewMeter attaches a meter to a node's processor at the current time;
// only activity after attachment is billed.
func NewMeter(eng *sim.Engine, c *cpu.Model, model PowerModel) *Meter {
	m := &Meter{eng: eng, cpu: c, model: model, start: eng.Now()}
	c.Sync()
	m.busy0 = totalBusy(c)
	m.stall0 = c.TotalStallTime()
	return m
}

func totalBusy(c *cpu.Model) sim.Time {
	var busy sim.Time
	for i := 0; i < c.NumLogical(); i++ {
		busy += c.Logical(i).Busy()
	}
	return busy
}

// Reading is a point-in-time energy report.
type Reading struct {
	Elapsed sim.Time
	// Joules consumed since the meter attached.
	Joules float64
	// BusyJoules/SMMJoules/IdleJoules decompose the total.
	BusyJoules float64
	SMMJoules  float64
	IdleJoules float64
	// MeanWatts is Joules/Elapsed.
	MeanWatts float64
}

// Read reports energy consumed since the meter attached.
func (m *Meter) Read() Reading {
	m.cpu.Sync()
	elapsed := m.eng.Now() - m.start
	busy := totalBusy(m.cpu) - m.busy0
	online := m.cpu.NumOnline()
	stall := m.cpu.TotalStallTime() - m.stall0
	r := Reading{Elapsed: elapsed}
	r.IdleJoules = m.model.Idle * elapsed.Seconds()
	r.BusyJoules = m.model.ActivePerCore * busy.Seconds()
	r.SMMJoules = m.model.SMMPerCore * float64(online) * stall.Seconds()
	r.Joules = r.IdleJoules + r.BusyJoules + r.SMMJoules
	if elapsed > 0 {
		r.MeanWatts = r.Joules / elapsed.Seconds()
	}
	return r
}

// EnergyPerWork reports joules per unit of completed work — the metric
// the prior study shows SMIs inflate. work is any throughput count
// (operations, loop iterations, benchmark units).
func (m *Meter) EnergyPerWork(work float64) float64 {
	if work <= 0 {
		return 0
	}
	return m.Read().Joules / work
}
