package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"smistudy/internal/sim"
)

// testParams is a simple 4-core HTT processor at 1 GHz.
func testParams() Params {
	return Params{
		PhysCores:     4,
		HTT:           true,
		BaseHz:        1e9,
		MissPenalty:   100,
		SMTEfficiency: 0.9,
	}
}

// cpuProfile is a pure compute workload: 1 cycle/op, no misses.
var cpuProfile = Profile{CPI: 1}

func TestValidate(t *testing.T) {
	cases := []Params{
		{},
		{PhysCores: 1},
		{PhysCores: 1, BaseHz: 1e9, MissPenalty: -1, SMTEfficiency: 1},
		{PhysCores: 1, BaseHz: 1e9, SMTEfficiency: 0},
		{PhysCores: 1, BaseHz: 1e9, SMTEfficiency: 1.5},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := testParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSingleThreadComputeTime(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	var doneAt sim.Time
	m.StartCompute(th, 1e9, func() { doneAt = e.Now() }) // 1e9 ops at 1e9 ops/s = 1s
	e.Run()
	if math.Abs(doneAt.Seconds()-1.0) > 1e-6 {
		t.Fatalf("1e9 ops at 1GHz took %v, want 1s", doneAt)
	}
	if math.Abs(th.OpsDone()-1e9) > 1 {
		t.Fatalf("ops done = %v, want 1e9", th.OpsDone())
	}
}

func TestMissPenaltySlowsThread(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", Profile{CPI: 1, MissRate: 0.01})
	var doneAt sim.Time
	m.StartCompute(th, 1e9, func() { doneAt = e.Now() })
	e.Run()
	// Effective CPI = 1 + 0.01*100 = 2 → 2 s.
	if math.Abs(doneAt.Seconds()-2.0) > 1e-6 {
		t.Fatalf("missy thread took %v, want 2s", doneAt)
	}
}

func TestThreadsSpreadAcrossPhysicalCoresFirst(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	// 4 threads on 4 phys × 2 logical: each should get its own physical
	// core, i.e. run at full solo speed.
	var finished []sim.Time
	for i := 0; i < 4; i++ {
		th := m.NewThread("t", cpuProfile)
		m.StartCompute(th, 1e9, func() { finished = append(finished, e.Now()) })
	}
	e.Run()
	for _, at := range finished {
		if math.Abs(at.Seconds()-1.0) > 1e-6 {
			t.Fatalf("thread finished at %v, want 1s (no sibling contention with 4 threads)", at)
		}
	}
}

func TestHTTContentionForComputeBound(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	// 8 compute-bound threads on 4 phys cores: siblings share issue
	// slots. For CPI=1, no-miss threads, b=1, each sibling gets
	// eff*b*(1-b/2) = 0.9*0.5 = 0.45 ops/cycle → ~2.22s.
	var finished []sim.Time
	for i := 0; i < 8; i++ {
		th := m.NewThread("t", cpuProfile)
		m.StartCompute(th, 1e9, func() { finished = append(finished, e.Now()) })
	}
	e.Run()
	if len(finished) != 8 {
		t.Fatalf("finished %d of 8", len(finished))
	}
	want := 1 / 0.45
	for _, at := range finished {
		if math.Abs(at.Seconds()-want) > 1e-3 {
			t.Fatalf("HTT-contended thread took %v, want %.3fs", at, want)
		}
	}
}

func TestHTTBenefitsStallHeavyThreads(t *testing.T) {
	// Total throughput of 2 miss-heavy threads on one physical core
	// should exceed 1.2× a single such thread (stall cycles filled),
	// while compute-bound pairs gain nothing.
	run := func(prof Profile, threads int) float64 {
		e := sim.New(1)
		m := MustNew(e, Params{PhysCores: 1, HTT: true, BaseHz: 1e9, MissPenalty: 100, SMTEfficiency: 0.9})
		var last sim.Time
		for i := 0; i < threads; i++ {
			th := m.NewThread("t", prof)
			m.StartCompute(th, 1e8, func() { last = e.Now() })
		}
		e.Run()
		return float64(threads) * 1e8 / last.Seconds() // aggregate ops/s
	}
	missy := Profile{CPI: 1, MissRate: 0.02} // b = 1/3
	soloTP := run(missy, 1)
	pairTP := run(missy, 2)
	if pairTP < 1.2*soloTP {
		t.Errorf("stall-heavy pair throughput %.3g not > 1.2× solo %.3g", pairTP, soloTP)
	}
	soloC := run(cpuProfile, 1)
	pairC := run(cpuProfile, 2)
	if pairC > 1.0*soloC {
		t.Errorf("compute-bound pair throughput %.3g should not exceed solo %.3g", pairC, soloC)
	}
}

func TestMemoryBandwidthCeiling(t *testing.T) {
	par := testParams()
	par.HTT = false
	par.MemBandwidth = 1e6 // 1M misses/s
	e := sim.New(1)
	m := MustNew(e, par)
	// One thread with 1% misses at ~0.5e9 ops/s would demand 5e6
	// misses/s > 1e6 cap → rate capped at 1e8 ops/s.
	th := m.NewThread("t", Profile{CPI: 1, MissRate: 0.01})
	var doneAt sim.Time
	m.StartCompute(th, 1e8, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(doneAt.Seconds()-1.0) > 1e-3 {
		t.Fatalf("bandwidth-capped thread took %v, want ~1s", doneAt)
	}
}

func TestBandwidthDoesNotThrottleCacheFriendly(t *testing.T) {
	par := testParams()
	par.HTT = false
	par.MemBandwidth = 1e6
	e := sim.New(1)
	m := MustNew(e, par)
	hog := m.NewThread("hog", Profile{CPI: 1, MissRate: 0.05})
	friendly := m.NewThread("cf", Profile{CPI: 1})
	var cfDone sim.Time
	m.StartCompute(hog, 1e9, func() {})
	m.StartCompute(friendly, 1e9, func() { cfDone = e.Now() })
	e.Run()
	if math.Abs(cfDone.Seconds()-1.0) > 1e-3 {
		t.Fatalf("cache-friendly thread throttled by hog: %v, want 1s", cfDone)
	}
}

func TestStallFreezesProgress(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	var doneAt sim.Time
	m.StartCompute(th, 1e9, func() { doneAt = e.Now() })
	// Stall for 100ms starting at 500ms.
	e.At(500*sim.Millisecond, func() { m.Stall() })
	e.At(600*sim.Millisecond, func() { m.Unstall() })
	e.Run()
	if math.Abs(doneAt.Seconds()-1.1) > 1e-6 {
		t.Fatalf("stalled thread finished at %v, want 1.1s", doneAt)
	}
	if m.TotalStallTime() != 100*sim.Millisecond {
		t.Fatalf("stall time = %v, want 100ms", m.TotalStallTime())
	}
}

func TestNestedStalls(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	var doneAt sim.Time
	m.StartCompute(th, 1e9, func() { doneAt = e.Now() })
	e.At(100*sim.Millisecond, func() { m.Stall() })
	e.At(150*sim.Millisecond, func() { m.Stall() })
	e.At(200*sim.Millisecond, func() { m.Unstall() })
	if m.Stalled() {
		t.Fatal("stalled before run")
	}
	e.At(300*sim.Millisecond, func() { m.Unstall() })
	e.Run()
	if math.Abs(doneAt.Seconds()-1.2) > 1e-6 {
		t.Fatalf("nested-stall thread finished at %v, want 1.2s", doneAt)
	}
}

func TestSMMTimeMisattribution(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	m.StartCompute(th, 1e9, func() {})
	e.At(500*sim.Millisecond, func() { m.Stall() })
	e.At(600*sim.Millisecond, func() { m.Unstall() })
	e.Run()
	// The kernel charges the full 1.1s to the thread; only 1.0s is real.
	if math.Abs(th.OSTime().Seconds()-1.1) > 1e-6 {
		t.Fatalf("OS-accounted time = %v, want 1.1s", th.OSTime())
	}
	if math.Abs(th.TrueTime().Seconds()-1.0) > 1e-6 {
		t.Fatalf("true time = %v, want 1.0s", th.TrueTime())
	}
}

func TestOfflineCPUsMigrateLoad(t *testing.T) {
	e := sim.New(1)
	par := testParams()
	par.HTT = false
	m := MustNew(e, par)
	// 4 threads on 4 cores, then offline 2 cores at t=0.5s: remaining
	// work timeshares 2 cores → finishes at 0.5 + 0.5*2 = 1.5s.
	var last sim.Time
	for i := 0; i < 4; i++ {
		th := m.NewThread("t", cpuProfile)
		m.StartCompute(th, 1e9, func() { last = e.Now() })
	}
	e.At(500*sim.Millisecond, func() {
		if err := m.SetOnline(2, false); err != nil {
			t.Error(err)
		}
		if err := m.SetOnline(3, false); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if math.Abs(last.Seconds()-1.5) > 1e-3 {
		t.Fatalf("after offlining, last thread at %v, want 1.5s", last)
	}
	if m.NumOnline() != 2 {
		t.Fatalf("online = %d, want 2", m.NumOnline())
	}
}

func TestOnlineFirstOrdering(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	if err := m.OnlineFirst(3); err != nil {
		t.Fatal(err)
	}
	// Expect logical CPUs 0,1,2 (sibling 0 of phys 0,1,2) online.
	for i := 0; i < 8; i++ {
		want := i < 3
		if m.Logical(i).Online() != want {
			t.Errorf("cpu %d online = %v, want %v", i, m.Logical(i).Online(), want)
		}
	}
	// 6 CPUs: 4 physical + 2 siblings.
	if err := m.OnlineFirst(6); err != nil {
		t.Fatal(err)
	}
	online := 0
	for i := 0; i < 8; i++ {
		if m.Logical(i).Online() {
			online++
		}
	}
	if online != 6 {
		t.Fatalf("online = %d, want 6", online)
	}
	if !m.Logical(4).Online() || !m.Logical(5).Online() {
		t.Error("siblings of phys 0 and 1 should be the 5th and 6th CPUs")
	}
	if err := m.OnlineFirst(0); err == nil {
		t.Error("OnlineFirst(0) should fail")
	}
	if err := m.OnlineFirst(9); err == nil {
		t.Error("OnlineFirst(9) should fail")
	}
}

func TestNoOnlineCPUStarves(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	done := false
	m.StartCompute(th, 1e9, func() { done = true })
	if err := m.OnlineFirst(1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetOnline(0, false); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(10 * sim.Second)
	if done {
		t.Fatal("thread made progress with zero online CPUs")
	}
	if err := m.SetOnline(0, true); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !done {
		t.Fatal("thread never completed after re-onlining")
	}
}

func TestZeroOpsCompletesImmediately(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	done := false
	m.StartCompute(th, 0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-op job never completed")
	}
}

func TestDoubleComputePanics(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	m.StartCompute(th, 1e9, nil)
	defer func() {
		if recover() == nil {
			t.Error("second StartCompute did not panic")
		}
	}()
	m.StartCompute(th, 1e9, nil)
}

func TestComputeBlocksProcess(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	var after sim.Time
	e.Go("worker", func(p *sim.Proc) {
		th.Compute(p, 5e8)
		after = p.Now()
	})
	e.Run()
	if math.Abs(after.Seconds()-0.5) > 1e-6 {
		t.Fatalf("Compute returned at %v, want 0.5s", after)
	}
}

func TestRemoveAbandonsJob(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	fired := false
	m.StartCompute(th, 1e9, func() { fired = true })
	e.At(100*sim.Millisecond, func() { m.Remove(th) })
	e.Run()
	if fired {
		t.Fatal("abandoned job completed")
	}
}

// Property: work is conserved — a thread asked for N ops reports N ops
// done on completion, regardless of stalls and contention.
func TestWorkConservationProperty(t *testing.T) {
	prop := func(seed int64, nThreads, nStalls uint8) bool {
		e := sim.New(seed)
		m := MustNew(e, testParams())
		k := int(nThreads%12) + 1
		asked := make([]float64, k)
		threads := make([]*Thread, k)
		for i := 0; i < k; i++ {
			ops := float64(e.Rand().Int63n(1e8) + 1e6)
			asked[i] = ops
			threads[i] = m.NewThread("t", Profile{CPI: 1, MissRate: e.Rand().Float64() * 0.01})
			m.StartCompute(threads[i], ops, nil)
		}
		for s := 0; s < int(nStalls%5); s++ {
			at := sim.Time(e.Rand().Int63n(int64(sim.Second)))
			d := sim.Time(e.Rand().Int63n(int64(100 * sim.Millisecond)))
			e.At(at, m.Stall)
			e.At(at+d, m.Unstall)
		}
		e.Run()
		for i, th := range threads {
			if math.Abs(th.OpsDone()-asked[i]) > asked[i]*1e-9+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	e := sim.New(1)
	par := testParams()
	par.HTT = false
	m := MustNew(e, par)
	th := m.NewThread("t", cpuProfile)
	m.StartCompute(th, 1e9, nil)
	e.Run()
	// 1 thread busy 1s on 1 of 4 cores.
	if u := m.Utilization(); math.Abs(u-0.25) > 1e-6 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestLogicalTopology(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	if m.NumLogical() != 8 {
		t.Fatalf("logical = %d, want 8", m.NumLogical())
	}
	for i := 0; i < 8; i++ {
		l := m.Logical(i)
		if l.Phys != i%4 || l.Sib != i/4 {
			t.Errorf("cpu %d: phys=%d sib=%d", i, l.Phys, l.Sib)
		}
		sib := m.sibling(l)
		if sib.Phys != l.Phys || sib == l {
			t.Errorf("cpu %d sibling wrong", i)
		}
	}
	if err := m.SetOnline(99, false); err == nil {
		t.Error("SetOnline(99) should fail")
	}
}

func TestPinnedThreadStaysPut(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	// Two threads pinned to the same logical CPU timeshare it even
	// though seven other CPUs are idle: each takes 2s for 1e9 ops.
	var finished []sim.Time
	for i := 0; i < 2; i++ {
		th := m.NewThread("pinned", cpuProfile)
		if err := m.Pin(th, 3); err != nil {
			t.Fatal(err)
		}
		m.StartCompute(th, 1e9, func() { finished = append(finished, e.Now()) })
	}
	e.Run()
	for _, at := range finished {
		if math.Abs(at.Seconds()-2.0) > 1e-3 {
			t.Fatalf("pinned pair finished at %v, want 2s (shared one CPU)", at)
		}
	}
}

func TestPinInvalidCPU(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	if err := m.Pin(th, 99); err == nil {
		t.Fatal("bogus pin accepted")
	}
}

func TestPinOfflineFallsBack(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	if err := m.Pin(th, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.SetOnline(2, false); err != nil {
		t.Fatal(err)
	}
	done := false
	m.StartCompute(th, 1e9, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("thread starved when its pinned CPU went offline")
	}
}

func TestUnpinRebalances(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	a := m.NewThread("a", cpuProfile)
	b := m.NewThread("b", cpuProfile)
	if err := m.Pin(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(b, 0); err != nil {
		t.Fatal(err)
	}
	var doneA, doneB sim.Time
	m.StartCompute(a, 1e9, func() { doneA = e.Now() })
	m.StartCompute(b, 1e9, func() { doneB = e.Now() })
	// Free b at 0.5s: both should speed up to full rate.
	e.At(500*sim.Millisecond, func() { m.Unpin(b) })
	e.Run()
	if math.Abs(doneA.Seconds()-1.25) > 1e-3 || math.Abs(doneB.Seconds()-1.25) > 1e-3 {
		t.Fatalf("after unpin: a=%v b=%v, want 1.25s each", doneA, doneB)
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	// One thread pinned to CPU 0 plus 3 unpinned on 4 physical cores:
	// the unpinned ones must avoid CPU 0 and all finish at solo speed.
	p := m.NewThread("p", cpuProfile)
	if err := m.Pin(p, 0); err != nil {
		t.Fatal(err)
	}
	m.StartCompute(p, 1e9, nil)
	var finished []sim.Time
	for i := 0; i < 3; i++ {
		th := m.NewThread("u", cpuProfile)
		m.StartCompute(th, 1e9, func() { finished = append(finished, e.Now()) })
	}
	e.Run()
	for _, at := range finished {
		if math.Abs(at.Seconds()-1.0) > 1e-3 {
			t.Fatalf("unpinned thread at %v, want 1s (own physical core)", at)
		}
	}
}
