package cpu

import (
	"math"
	"testing"

	"smistudy/internal/sim"
)

// TestStallCPUFreezesOnlyThatCPU pins the per-CPU stall semantics: a
// core-scoped steal freezes exactly the stalled logical CPU's thread —
// a visible preemption, so the frozen time is charged to the stealing
// daemon (no OS-time accrual), while threads elsewhere are untouched.
func TestStallCPUFreezesOnlyThatCPU(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	a := m.NewThread("a", cpuProfile)
	b := m.NewThread("b", cpuProfile)
	if err := m.Pin(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(b, 1); err != nil {
		t.Fatal(err)
	}
	var doneA, doneB sim.Time
	m.StartCompute(a, 1e9, func() { doneA = e.Now() })
	m.StartCompute(b, 1e9, func() { doneB = e.Now() })
	e.At(500*sim.Millisecond, func() { m.StallCPU(0) })
	e.At(600*sim.Millisecond, func() { m.UnstallCPU(0) })
	e.Run()
	if math.Abs(doneA.Seconds()-1.1) > 1e-6 {
		t.Fatalf("stalled-CPU thread finished at %v, want 1.1s", doneA)
	}
	if math.Abs(doneB.Seconds()-1.0) > 1e-6 {
		t.Fatalf("unrelated thread finished at %v, want 1.0s", doneB)
	}
	if got := m.Logical(0).Stolen(); got != 100*sim.Millisecond {
		t.Fatalf("cpu0 stolen = %v, want 100ms", got)
	}
	if got := m.Logical(1).Stolen(); got != 0 {
		t.Fatalf("cpu1 stolen = %v, want 0", got)
	}
	// Visible preemption: the kernel does not charge the victim for the
	// stolen window, so OS time and true time agree at 1.0 s.
	if math.Abs(a.OSTime().Seconds()-1.0) > 1e-6 {
		t.Fatalf("OS-accounted time = %v, want 1.0s (steal is visible)", a.OSTime())
	}
}

func TestStallCPUNesting(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	th := m.NewThread("t", cpuProfile)
	if err := m.Pin(th, 0); err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	m.StartCompute(th, 1e9, func() { done = e.Now() })
	e.At(100*sim.Millisecond, func() { m.StallCPU(0) })
	e.At(150*sim.Millisecond, func() { m.StallCPU(0) })
	e.At(200*sim.Millisecond, func() { m.UnstallCPU(0) })
	e.At(300*sim.Millisecond, func() {
		if !m.CPUStalled(0) {
			t.Errorf("cpu0 not stalled at depth 1")
		}
		m.UnstallCPU(0)
	})
	e.Run()
	if math.Abs(done.Seconds()-1.2) > 1e-6 {
		t.Fatalf("nested per-CPU stall finished at %v, want 1.2s", done)
	}
	if got := m.Logical(0).Stolen(); got != 200*sim.Millisecond {
		t.Fatalf("cpu0 stolen = %v, want 200ms", got)
	}
}

// TestSMTSharesDefaultBitIdentical pins the refactor contract: an
// explicit symmetric 0.5 share is bit-identical to the historic fixed
// split (0.5 is exact in binary, so us*0.5 == us/2 in IEEE754).
func TestSMTSharesDefaultBitIdentical(t *testing.T) {
	run := func(shares []float64) []sim.Time {
		e := sim.New(1)
		par := testParams()
		par.SMTShares = shares
		m := MustNew(e, par)
		var done []sim.Time
		// 8 threads saturate all 4 physical cores' sibling pairs.
		for i := 0; i < 8; i++ {
			th := m.NewThread("t", Profile{CPI: 1, MissRate: 0.002})
			m.StartCompute(th, 1e9, func() { done = append(done, e.Now()) })
		}
		e.Run()
		return done
	}
	base := run(nil)
	explicit := run([]float64{0.5, 0.5, 0.5, 0.5})
	if len(base) != len(explicit) {
		t.Fatalf("completion counts differ: %d vs %d", len(base), len(explicit))
	}
	for i := range base {
		if base[i] != explicit[i] {
			t.Fatalf("completion %d: default %v, explicit 0.5 share %v (must be bit-identical)", i, base[i], explicit[i])
		}
	}
}

// TestSMTSharesAsymmetry: a SYNPA-style asymmetric share speeds up the
// favored sibling and slows the conceding one. Rates are compared
// mid-contention (total completion times would not show it: once the
// favored sibling finishes, the other runs the tail uncontended).
func TestSMTSharesAsymmetry(t *testing.T) {
	run := func(shares []float64) (ops0, ops1 float64) {
		e := sim.New(1)
		par := testParams()
		par.SMTShares = shares
		m := MustNew(e, par)
		a := m.NewThread("a", cpuProfile)
		b := m.NewThread("b", cpuProfile)
		// Pin both siblings of physical core 0 (logical 0 and 4).
		if err := m.Pin(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Pin(b, 4); err != nil {
			t.Fatal(err)
		}
		m.StartCompute(a, 1e9, nil)
		m.StartCompute(b, 1e9, nil)
		e.At(sim.Second, func() {
			m.Sync()
			ops0, ops1 = a.OpsDone(), b.OpsDone()
			e.Stop()
		})
		e.Run()
		return
	}
	s0, s1 := run(nil)
	if s0 != s1 {
		t.Fatalf("symmetric split progressed unevenly: %v vs %v ops", s0, s1)
	}
	f0, f1 := run([]float64{0.8, 0.5, 0.5, 0.5})
	if f0 <= s0 {
		t.Fatalf("favored sibling 0 did not speed up: %v vs symmetric %v ops", f0, s0)
	}
	if f1 >= s1 {
		t.Fatalf("conceding sibling 1 did not slow down: %v vs symmetric %v ops", f1, s1)
	}
}

func TestSMTSharesValidate(t *testing.T) {
	for i, shares := range [][]float64{
		{0}, {1}, {-0.2}, {1.3}, {0.5, 0.5, 0.5, 0.5, 0.5},
	} {
		par := testParams()
		par.SMTShares = shares
		if err := par.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted smt shares %v", i, shares)
		}
	}
	par := testParams()
	par.SMTShares = []float64{0.7, 0.3}
	if err := par.Validate(); err != nil {
		t.Errorf("valid partial shares rejected: %v", err)
	}
}
