// Package cpu models a multicore, optionally hyper-threaded processor
// executing compute-bound thread work under piecewise-constant rates.
//
// The model tracks, for every runnable thread, an outstanding compute job
// (a number of abstract operations). Threads are assigned to online
// logical CPUs the way Linux spreads load: across physical cores first,
// hyper-threaded siblings second. Each thread then progresses at a rate
// determined by its workload profile (CPI, cache miss rate), sibling
// contention for issue slots, the node's memory-bandwidth ceiling, and —
// crucially for this study — whether the processor is currently stalled in
// System Management Mode (rate zero for every logical CPU).
//
// Whenever anything changes (job arrives or finishes, SMI begins or ends,
// a CPU is onlined or offlined) the model integrates progress since the
// last change and recomputes rates, scheduling a completion event for the
// next job to finish. This gives exact piecewise-linear progress without
// per-timeslice events.
package cpu

import (
	"fmt"
	"math"
	"sort"

	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

// Params configures a node's processor.
type Params struct {
	PhysCores int     // number of physical cores
	HTT       bool    // expose two logical CPUs per physical core
	BaseHz    float64 // core clock in cycles/second

	// MissPenalty is the average stall, in cycles, per cache miss.
	MissPenalty float64
	// MemBandwidth is the node-wide ceiling on cache misses per second
	// (models DRAM bandwidth saturation). Zero means unlimited.
	MemBandwidth float64
	// SMTEfficiency derates issue throughput when both hyper-threaded
	// siblings are busy (front-end sharing losses). 1 means ideal
	// slot-filling; Nehalem-class parts are around 0.9.
	SMTEfficiency float64
	// SMTShares sets, per physical core, the issue-slot share the
	// sibling-0 logical CPU keeps of the overlap when both
	// hyper-threaded siblings are busy (SYNPA-style asymmetric SMT
	// partitioning); sibling 1 gets the complement. Entries must be in
	// (0,1); an empty or short slice means the symmetric 0.5 split for
	// the remaining cores, which is the classic fixed HTT behavior.
	SMTShares []float64
}

// Validate reports whether the parameters describe a usable processor.
func (p Params) Validate() error {
	if p.PhysCores <= 0 {
		return fmt.Errorf("cpu: PhysCores = %d, need > 0", p.PhysCores)
	}
	if p.BaseHz <= 0 {
		return fmt.Errorf("cpu: BaseHz = %v, need > 0", p.BaseHz)
	}
	if p.MissPenalty < 0 {
		return fmt.Errorf("cpu: negative MissPenalty")
	}
	if p.SMTEfficiency <= 0 || p.SMTEfficiency > 1 {
		return fmt.Errorf("cpu: SMTEfficiency = %v, need (0,1]", p.SMTEfficiency)
	}
	if len(p.SMTShares) > p.PhysCores {
		return fmt.Errorf("cpu: %d SMTShares for %d physical cores", len(p.SMTShares), p.PhysCores)
	}
	for i, s := range p.SMTShares {
		if s <= 0 || s >= 1 {
			return fmt.Errorf("cpu: SMTShares[%d] = %v, need (0,1)", i, s)
		}
	}
	return nil
}

// Profile describes how a thread's instruction stream behaves on the core.
type Profile struct {
	// CPI is the cycles per operation when all references hit cache.
	CPI float64
	// MissRate is the rate of *stalling* cache misses per operation
	// with the thread alone on its physical core (misses the prefetcher
	// and out-of-order engine cannot hide).
	MissRate float64
	// MissRateShared is the stalling miss rate when the thread shares
	// its physical core's cache with a hyper-threaded sibling. Must be
	// ≥ MissRate; zero means "same as MissRate".
	MissRateShared float64
	// MemMissRate is the total memory traffic per operation (cache
	// lines fetched, stalling or prefetched) counted against the node's
	// memory-bandwidth ceiling. Zero means "same as the stalling rate".
	MemMissRate float64
}

func (p Profile) sharedMiss() float64 {
	if p.MissRateShared > p.MissRate {
		return p.MissRateShared
	}
	return p.MissRate
}

// soloOpsPerCycle returns ops/cycle for the profile running alone, with
// the given miss rate. It doubles as the thread's issue-slot demand: one
// op occupies one issue slot, so a thread at u ops/cycle leaves (1-u) of
// the core's slots — latency stalls, dependency bubbles, cache misses —
// for a hyper-threaded sibling to fill.
func soloOpsPerCycle(cpi, miss, penalty float64) float64 {
	return 1 / (cpi + miss*penalty)
}

// Logical is one schedulable CPU as seen by the OS.
type Logical struct {
	ID     int // 0..n-1, Linux-style: IDs [0,phys) are sibling 0, [phys,2*phys) sibling 1
	Phys   int
	Sib    int // 0 or 1
	online bool

	threads []*Thread // runnable threads currently assigned here
	busy    sim.Time  // accumulated busy time (≥1 thread assigned, not stalled)

	// stallDepth counts nested per-CPU stalls (core-scoped noise
	// sources stealing just this logical CPU), independent of the
	// node-global SMM stall; stolen accumulates the time lost to them.
	stallDepth int
	stolen     sim.Time
}

// Online reports whether the logical CPU is schedulable.
func (l *Logical) Online() bool { return l.online }

// Thread is a schedulable entity with compute demand.
type Thread struct {
	id    int
	name  string
	prof  Profile
	model *Model
	pin   int // logical CPU the thread is pinned to, -1 if unpinned

	job     *job
	cpu     *Logical // current assignment, nil if none
	rate    float64  // current ops/sec
	osShare float64  // current share of a CPU as the OS accounts it

	// Accounting. OSTime is what the simulated kernel would charge the
	// thread (it cannot see SMM stalls); TrueTime is time the thread
	// actually made progress. The difference is SMM misattribution.
	osTime   sim.Time
	trueTime sim.Time
	done     float64 // total ops completed

	// lastCPU is the logical CPU the tracer last saw the thread on
	// (-1 = none); only maintained while a tracer is attached.
	lastCPU int
}

type job struct {
	remaining float64
	total     float64
	onDone    func()
}

// Model is the processor of one node.
type Model struct {
	eng      *sim.Engine
	par      Params
	logical  []*Logical
	threads  map[*Thread]struct{}
	runnable []*Thread

	stalled    bool
	stallDepth int
	stallTime  sim.Time // accumulated all-core stall

	lastUpdate sim.Time
	completion *sim.Event
	nextTID    int

	tr           obs.Tracer // nil unless the run is traced
	node         int32
	schedScratch []*Thread // reused by emitSched to avoid per-reschedule allocs
}

// SetTracer attaches an observability tracer; scheduling events carry
// node as their node index. The first reschedule after attaching emits
// run events for threads already placed, snapshotting current state.
func (m *Model) SetTracer(tr obs.Tracer, node int) {
	m.tr = tr
	m.node = int32(node)
}

// New builds a processor model attached to engine e. With HTT enabled the
// model exposes 2×PhysCores logical CPUs, numbered like Linux: CPU i and
// CPU i+PhysCores are siblings on physical core i. All CPUs start online.
func New(e *sim.Engine, par Params) (*Model, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		eng:     e,
		par:     par,
		threads: make(map[*Thread]struct{}),
	}
	n := par.PhysCores
	if par.HTT {
		n *= 2
	}
	for i := 0; i < n; i++ {
		m.logical = append(m.logical, &Logical{
			ID:     i,
			Phys:   i % par.PhysCores,
			Sib:    i / par.PhysCores,
			online: true,
		})
	}
	m.lastUpdate = e.Now()
	return m, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(e *sim.Engine, par Params) *Model {
	m, err := New(e, par)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the processor configuration.
func (m *Model) Params() Params { return m.par }

// NumLogical reports the number of logical CPUs (online or not).
func (m *Model) NumLogical() int { return len(m.logical) }

// NumOnline reports the number of online logical CPUs.
func (m *Model) NumOnline() int {
	n := 0
	for _, l := range m.logical {
		if l.online {
			n++
		}
	}
	return n
}

// Logical returns logical CPU id.
func (m *Model) Logical(id int) *Logical { return m.logical[id] }

// SetOnline onlines or offlines a logical CPU, like writing to
// /sys/devices/system/cpu/cpuN/online. Offlining a CPU migrates its
// threads elsewhere at the next reschedule.
func (m *Model) SetOnline(id int, online bool) error {
	if id < 0 || id >= len(m.logical) {
		return fmt.Errorf("cpu: no logical cpu %d", id)
	}
	if m.logical[id].online == online {
		return nil
	}
	m.reconfigure(func() { m.logical[id].online = online })
	return nil
}

// OnlineFirst onlines exactly n logical CPUs in the order the paper's
// methodology does: physical cores first (all siblings offlined), then
// hyper-threaded siblings. Returns an error if n is out of range.
func (m *Model) OnlineFirst(n int) error {
	if n < 1 || n > len(m.logical) {
		return fmt.Errorf("cpu: cannot online %d of %d CPUs", n, len(m.logical))
	}
	order := m.schedOrder()
	m.reconfigure(func() {
		for i, l := range order {
			l.online = i < n
		}
	})
	return nil
}

// schedOrder returns all logical CPUs sorted sibling-0 cores first, so
// assignment spreads across physical cores before doubling up.
func (m *Model) schedOrder() []*Logical {
	order := make([]*Logical, len(m.logical))
	copy(order, m.logical)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Sib != order[j].Sib {
			return order[i].Sib < order[j].Sib
		}
		return order[i].Phys < order[j].Phys
	})
	return order
}

// NewThread registers a thread with the given workload profile.
func (m *Model) NewThread(name string, prof Profile) *Thread {
	m.nextTID++
	t := &Thread{id: m.nextTID, name: name, prof: prof, model: m, pin: -1, lastCPU: -1}
	m.threads[t] = struct{}{}
	return t
}

// Pin restricts a thread to one logical CPU (sched_setaffinity with a
// single-CPU mask). If the CPU is offline when scheduling happens, the
// thread falls back to normal placement, like Linux does when an
// affinity mask becomes empty.
func (m *Model) Pin(t *Thread, logicalID int) error {
	if logicalID < 0 || logicalID >= len(m.logical) {
		return fmt.Errorf("cpu: no logical cpu %d", logicalID)
	}
	m.reconfigure(func() { t.pin = logicalID })
	return nil
}

// Unpin removes a thread's affinity restriction.
func (m *Model) Unpin(t *Thread) {
	m.reconfigure(func() { t.pin = -1 })
}

// Remove unregisters a thread. Any outstanding job is abandoned.
func (m *Model) Remove(t *Thread) {
	m.reconfigure(func() {
		t.job = nil
		delete(m.threads, t)
	})
}

// SetProfile changes a thread's workload profile (takes effect at once).
func (m *Model) SetProfile(t *Thread, prof Profile) {
	m.reconfigure(func() { t.prof = prof })
}

// StartCompute enqueues ops operations for thread t; onDone fires (as an
// engine event) when they complete. A thread can have one job at a time.
func (m *Model) StartCompute(t *Thread, ops float64, onDone func()) {
	if t.job != nil {
		panic(fmt.Sprintf("cpu: thread %q already computing", t.name))
	}
	if ops <= 0 {
		// Degenerate job: complete immediately (still via event for
		// deterministic ordering).
		m.eng.At(m.eng.Now(), onDone)
		return
	}
	m.reconfigure(func() {
		t.job = &job{remaining: ops, total: ops, onDone: onDone}
	})
}

// Compute runs ops operations on t, blocking the calling process until
// the work completes.
func (t *Thread) Compute(p *sim.Proc, ops float64) {
	wake, wait := p.Wait()
	t.model.StartCompute(t, ops, func() { wake(nil) })
	wait()
}

// Stall freezes every logical CPU (System Management Mode entry). Nested
// stalls are reference-counted; the processor resumes when every Stall has
// been matched by an Unstall.
func (m *Model) Stall() {
	m.reconfigure(func() {
		m.stallDepth++
		m.stalled = true
	})
}

// Unstall releases one Stall.
func (m *Model) Unstall() {
	m.reconfigure(func() {
		if m.stallDepth > 0 {
			m.stallDepth--
		}
		m.stalled = m.stallDepth > 0
	})
}

// Stalled reports whether the processor is currently in SMM.
func (m *Model) Stalled() bool { return m.stalled }

// StallCPU freezes one logical CPU: a core-scoped perturbation source
// (an OS daemon tick, say) owns it until the matching UnstallCPU.
// Unlike the invisible node-global Stall, the kernel sees this
// preemption — the frozen thread is neither progressing nor charged.
// Per-CPU stalls nest and compose with the global stall.
func (m *Model) StallCPU(id int) {
	m.reconfigure(func() { m.logical[id].stallDepth++ })
}

// UnstallCPU releases one StallCPU on logical CPU id.
func (m *Model) UnstallCPU(id int) {
	m.reconfigure(func() {
		if m.logical[id].stallDepth > 0 {
			m.logical[id].stallDepth--
		}
	})
}

// CPUStalled reports whether logical CPU id is per-CPU stalled.
func (m *Model) CPUStalled(id int) bool { return m.logical[id].stallDepth > 0 }

// TotalStallTime reports accumulated all-core stall time.
func (m *Model) TotalStallTime() sim.Time { return m.stallTime }

// OSTime reports the CPU time the kernel would account to t (including
// invisible SMM residency).
func (t *Thread) OSTime() sim.Time { return t.osTime }

// TrueTime reports the CPU time during which t actually progressed.
func (t *Thread) TrueTime() sim.Time { return t.trueTime }

// OpsDone reports the total operations t has completed.
func (t *Thread) OpsDone() float64 { return t.done }

// Name reports the thread's name.
func (t *Thread) Name() string { return t.name }

// Busy reports logical CPU l's accumulated non-idle, non-stalled time.
func (l *Logical) Busy() sim.Time { return l.busy }

// Stolen reports the time core-scoped noise sources have stolen from l
// (per-CPU stalls while work was assigned; node-global SMM residency is
// accounted separately via Model.TotalStallTime).
func (l *Logical) Stolen() sim.Time { return l.stolen }

// Threads returns the runnable threads currently assigned to l (valid
// until the next reschedule; callers that need an up-to-date view should
// call Model.Sync first).
func (l *Logical) Threads() []*Thread {
	out := make([]*Thread, len(l.threads))
	copy(out, l.threads)
	return out
}

// reconfigure integrates progress up to now, applies mutate, recomputes
// assignments and rates, completes finished jobs, and schedules the next
// completion event.
func (m *Model) reconfigure(mutate func()) {
	m.advance()
	if mutate != nil {
		mutate()
	}
	m.finishJobs()
	m.assign()
	if m.tr != nil {
		m.emitSched()
	}
	m.rates()
	m.scheduleCompletion()
}

// emitSched diffs every thread's placement against what the tracer last
// saw and emits run/preempt/migrate events. Threads are visited in id
// order (via a reused scratch slice) so traced runs stay deterministic
// despite map iteration.
func (m *Model) emitSched() {
	now := m.eng.Now()
	m.schedScratch = m.schedScratch[:0]
	for t := range m.threads {
		m.schedScratch = append(m.schedScratch, t)
	}
	sort.Slice(m.schedScratch, func(i, j int) bool { return m.schedScratch[i].id < m.schedScratch[j].id })
	for _, t := range m.schedScratch {
		cur := -1
		if t.cpu != nil {
			cur = t.cpu.ID
		}
		last := t.lastCPU
		if cur == last {
			continue
		}
		t.lastCPU = cur
		switch {
		case last < 0:
			m.tr.Emit(obs.Event{Time: now, Type: obs.EvSchedRun, Node: m.node,
				Track: int32(cur), A: int64(t.id), Name: t.name})
		case cur < 0:
			m.tr.Emit(obs.Event{Time: now, Type: obs.EvSchedPreempt, Node: m.node,
				Track: int32(last), A: int64(t.id), Name: t.name})
		default:
			m.tr.Emit(obs.Event{Time: now, Type: obs.EvSchedMigrate, Node: m.node,
				Track: int32(cur), A: int64(t.id), B: int64(last), Name: t.name})
		}
	}
}

// advance integrates job progress and accounting from lastUpdate to now.
func (m *Model) advance() {
	now := m.eng.Now()
	dt := now - m.lastUpdate
	m.lastUpdate = now
	if dt <= 0 {
		return
	}
	fdt := float64(dt) / float64(sim.Second)
	if m.stalled {
		m.stallTime += dt
	}
	for _, t := range m.runnable {
		if t.job == nil || t.cpu == nil {
			continue
		}
		t.job.remaining -= t.rate * fdt
		t.done += t.rate * fdt
		// The kernel charges the thread for its schedule share of the
		// wall time, SMM included; true time only accrues when the
		// thread can actually execute.
		t.osTime += sim.Time(float64(dt) * t.osShare)
		if !m.stalled {
			t.trueTime += sim.Time(float64(dt) * t.osShare)
		}
	}
	if !m.stalled {
		for _, l := range m.logical {
			if !l.online || len(l.threads) == 0 {
				continue
			}
			if l.stallDepth > 0 {
				l.stolen += dt
				continue
			}
			l.busy += dt
		}
	}
}

// finishJobs completes jobs whose remaining work reached zero. Threads
// are visited in id order so completion callbacks fire deterministically.
func (m *Model) finishJobs() {
	var finished []*Thread
	for t := range m.threads {
		if t.job != nil && t.job.remaining <= completionSlack(t.job.total) {
			finished = append(finished, t)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].id < finished[j].id })
	for _, t := range finished {
		done := t.job.onDone
		t.job = nil
		if done != nil {
			m.eng.At(m.eng.Now(), done)
		}
	}
}

// completionSlack is the op tolerance under which a job counts as done,
// absorbing float rounding from rate integration.
func completionSlack(total float64) float64 {
	s := total * 1e-12
	if s < 1e-6 {
		s = 1e-6
	}
	return s
}

// assign distributes runnable threads over online logical CPUs,
// physical-cores-first, round-robin.
func (m *Model) assign() {
	var online []*Logical
	for _, l := range m.schedOrder() {
		l.threads = l.threads[:0]
		if l.online {
			online = append(online, l)
		}
	}
	m.runnable = m.runnable[:0]
	for t := range m.threads {
		t.cpu = nil
		t.rate = 0
		t.osShare = 0
		if t.job != nil {
			m.runnable = append(m.runnable, t)
		}
	}
	sort.Slice(m.runnable, func(i, j int) bool { return m.runnable[i].id < m.runnable[j].id })
	if len(online) == 0 {
		return
	}
	// Pinned threads first: they go exactly where their mask says (if
	// that CPU is online).
	var unpinned []*Thread
	for _, t := range m.runnable {
		if t.pin >= 0 && m.logical[t.pin].online {
			l := m.logical[t.pin]
			l.threads = append(l.threads, t)
			t.cpu = l
			continue
		}
		unpinned = append(unpinned, t)
	}
	// Everyone else to the least-loaded online CPU, physical cores
	// first (ties resolve in sched order, keeping placement stable and
	// deterministic).
	for _, t := range unpinned {
		best := online[0]
		for _, l := range online[1:] {
			if len(l.threads) < len(best.threads) {
				best = l
			}
		}
		best.threads = append(best.threads, t)
		t.cpu = best
	}
}

// rates computes each runnable thread's ops/sec under the current
// assignment, sibling contention, bandwidth ceiling, and stall state.
func (m *Model) rates() {
	if m.stalled {
		for _, t := range m.runnable {
			t.rate = 0
			if t.cpu != nil {
				if t.cpu.stallDepth > 0 {
					// A daemon holds the CPU under the SMM stall: the
					// kernel charges the daemon, not this thread.
					t.osShare = 0
				} else {
					t.osShare = 1 / float64(len(t.cpu.threads))
				}
			}
		}
		return
	}
	// Pass 1: issue-slot shares per physical core.
	for _, t := range m.runnable {
		if t.cpu == nil {
			continue
		}
		l := t.cpu
		if l.stallDepth > 0 {
			// Core-scoped steal: the thread neither progresses nor is
			// charged — the preemption is visible, the kernel accounts
			// the stealing daemon instead.
			t.rate = 0
			t.osShare = 0
			continue
		}
		sib := m.sibling(l)
		sibBusy := sib != nil && sib.online && len(sib.threads) > 0
		miss := t.prof.MissRate
		if sibBusy {
			miss = t.prof.sharedMiss()
		}
		n := float64(len(l.threads))
		t.osShare = 1 / n
		if !sibBusy {
			// Whole core to this logical CPU; timeslice among threads.
			t.rate = m.par.BaseHz * soloOpsPerCycle(t.prof.CPI, miss, m.par.MissPenalty) / n
			continue
		}
		// Both siblings busy: this thread's issue-slot demand and the
		// sibling's average demand compete. A thread keeps its own
		// slots minus half of the overlap, derated by SMT front-end
		// efficiency, and cannot exceed its solo rate.
		u := soloOpsPerCycle(t.prof.CPI, miss, m.par.MissPenalty)
		us := m.avgOpsPerCycle(sib)
		// The thread concedes its configured slice of the overlap: the
		// symmetric default concedes half (0.5 is exact in binary, so
		// this is bit-identical to the historic us/2 formula); with an
		// asymmetric SMTShares entry, sibling 0 keeps share s of the
		// contested slots and concedes 1-s, sibling 1 the reverse.
		conceded := 0.5
		if l.Phys < len(m.par.SMTShares) {
			if s := m.par.SMTShares[l.Phys]; l.Sib == 0 {
				conceded = 1 - s
			} else {
				conceded = s
			}
		}
		opsPerCycle := m.par.SMTEfficiency * u * (1 - us*conceded)
		if opsPerCycle > u {
			opsPerCycle = u
		}
		t.rate = m.par.BaseHz * opsPerCycle / n
	}
	// Pass 2: memory bandwidth ceiling.
	if m.par.MemBandwidth > 0 {
		demand := 0.0
		for _, t := range m.runnable {
			demand += t.rate * m.effMiss(t)
		}
		if demand > m.par.MemBandwidth {
			scale := m.par.MemBandwidth / demand
			for _, t := range m.runnable {
				if m.effMiss(t) > 1e-6 {
					t.rate *= scale
				}
			}
		}
	}
}

// effMiss is the thread's memory-traffic rate per op for bandwidth
// accounting: MemMissRate when set, otherwise the stalling miss rate
// under the current cache-sharing state.
func (m *Model) effMiss(t *Thread) float64 {
	if t.prof.MemMissRate > 0 {
		return t.prof.MemMissRate
	}
	if t.cpu == nil {
		return t.prof.MissRate
	}
	sib := m.sibling(t.cpu)
	if sib != nil && sib.online && len(sib.threads) > 0 {
		return t.prof.sharedMiss()
	}
	return t.prof.MissRate
}

// avgOpsPerCycle is the average issue-slot demand of the threads on
// logical CPU l (each runs 1/n of the time, so the time-averaged demand
// is the mean).
func (m *Model) avgOpsPerCycle(l *Logical) float64 {
	if len(l.threads) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range l.threads {
		sum += soloOpsPerCycle(t.prof.CPI, t.prof.sharedMiss(), m.par.MissPenalty)
	}
	return sum / float64(len(l.threads))
}

func (m *Model) sibling(l *Logical) *Logical {
	if !m.par.HTT {
		return nil
	}
	if l.Sib == 0 {
		return m.logical[l.ID+m.par.PhysCores]
	}
	return m.logical[l.ID-m.par.PhysCores]
}

// scheduleCompletion arms an event for the earliest job completion.
func (m *Model) scheduleCompletion() {
	if m.completion != nil {
		m.eng.Cancel(m.completion)
		m.completion = nil
	}
	best := sim.Forever
	for _, t := range m.runnable {
		if t.job == nil || t.rate <= 0 {
			continue
		}
		sec := t.job.remaining / t.rate
		at := m.eng.Now() + sim.Time(math.Ceil(sec*float64(sim.Second)))
		if at <= m.eng.Now() {
			at = m.eng.Now() + 1
		}
		if at < best {
			best = at
		}
	}
	if best != sim.Forever {
		m.completion = m.eng.At(best, func() {
			m.completion = nil
			m.reconfigure(nil)
		})
	}
}

// Sync integrates progress and accounting up to the current instant so
// counters (Busy, TotalStallTime, per-thread times) are exact when read
// between events.
func (m *Model) Sync() { m.reconfigure(nil) }

// Utilization reports the mean busy fraction of online logical CPUs over
// the elapsed simulation time (0 if no time has passed).
func (m *Model) Utilization() float64 {
	now := m.eng.Now()
	if now == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, l := range m.logical {
		if l.online {
			sum += float64(l.busy) / float64(now)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
