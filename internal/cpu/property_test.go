package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smistudy/internal/sim"
)

// Property: aggregate throughput never exceeds the machine peak
// (BaseHz × physical cores for CPI-1 workloads), under any mix of
// threads, hotplug and stalls.
func TestThroughputCeilingProperty(t *testing.T) {
	prop := func(seed int64, nThreads, events uint8) bool {
		e := sim.New(seed)
		par := testParams()
		m := MustNew(e, par)
		rng := rand.New(rand.NewSource(seed))
		k := int(nThreads%16) + 1
		total := 0.0
		for i := 0; i < k; i++ {
			ops := float64(rng.Int63n(5e8) + 1e7)
			total += ops
			th := m.NewThread("t", Profile{CPI: 1})
			m.StartCompute(th, ops, nil)
		}
		// Random hotplug churn.
		for i := 0; i < int(events%6); i++ {
			at := sim.Time(rng.Int63n(int64(sim.Second)))
			n := rng.Intn(par.PhysCores*2) + 1
			e.At(at, func() { _ = m.OnlineFirst(n) })
		}
		e.Run()
		elapsed := e.Now().Seconds()
		if elapsed <= 0 {
			return total == 0
		}
		peak := par.BaseHz * float64(par.PhysCores)
		return total/elapsed <= peak*1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: OS-accounted time ≥ true time always, and they are equal
// when no stalls occur.
func TestAccountingOrderingProperty(t *testing.T) {
	prop := func(seed int64, withStall bool) bool {
		e := sim.New(seed)
		m := MustNew(e, testParams())
		rng := rand.New(rand.NewSource(seed))
		var threads []*Thread
		for i := 0; i < 6; i++ {
			th := m.NewThread("t", Profile{CPI: 1, MissRate: rng.Float64() * 0.005})
			threads = append(threads, th)
			m.StartCompute(th, float64(rng.Int63n(2e8)+1e6), nil)
		}
		if withStall {
			e.At(sim.Time(rng.Int63n(int64(100*sim.Millisecond))), m.Stall)
			e.After(0, func() {}) // keep queue alive
			e.At(200*sim.Millisecond, m.Unstall)
		}
		e.Run()
		for _, th := range threads {
			if th.OSTime() < th.TrueTime() {
				return false
			}
			if !withStall && th.OSTime() != th.TrueTime() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: utilization stays in [0,1] under arbitrary load and hotplug.
func TestUtilizationBoundsProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		e := sim.New(seed)
		m := MustNew(e, testParams())
		for i := 0; i < int(n8%24); i++ {
			th := m.NewThread("t", Profile{CPI: 1})
			m.StartCompute(th, float64(e.Rand().Int63n(1e8)+1), nil)
		}
		e.At(sim.Time(e.Rand().Int63n(int64(sim.Second))), func() {
			_ = m.OnlineFirst(int(e.Rand().Int63n(8)) + 1)
		})
		e.Run()
		u := m.Utilization()
		return u >= 0 && u <= 1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Sibling symmetry: two identical threads pinned to sibling CPUs must
// run at identical rates (finish together).
func TestSiblingSymmetry(t *testing.T) {
	e := sim.New(1)
	m := MustNew(e, testParams())
	var at [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		th := m.NewThread("t", Profile{CPI: 1, MissRate: 0.003, MissRateShared: 0.005})
		if err := m.Pin(th, i*4); err != nil { // CPU 0 and its sibling CPU 4
			t.Fatal(err)
		}
		m.StartCompute(th, 1e8, func() { at[i] = e.Now() })
	}
	e.Run()
	if at[0] != at[1] {
		t.Fatalf("siblings finished at %v and %v", at[0], at[1])
	}
}

// SMT sharing must never make a thread faster than running solo.
func TestSharingNeverBeatsSoloProperty(t *testing.T) {
	prop := func(seed int64, cpi10, miss1000 uint16) bool {
		cpi := 1 + float64(cpi10%40)/10
		miss := float64(miss1000%30) / 1000
		prof := Profile{CPI: cpi, MissRate: miss}
		run := func(threads int) sim.Time {
			e := sim.New(seed)
			m := MustNew(e, Params{PhysCores: 1, HTT: true, BaseHz: 1e9, MissPenalty: 100, SMTEfficiency: 0.9})
			var last sim.Time
			for i := 0; i < threads; i++ {
				th := m.NewThread("t", prof)
				m.StartCompute(th, 1e7, func() { last = e.Now() })
			}
			e.Run()
			return last
		}
		solo := run(1)
		pair := run(2)
		// Each of the pair must take at least as long as solo.
		return pair >= solo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
