package paperdata

import (
	"math"
	"strings"
	"testing"
)

func TestBandBoundary(t *testing.T) {
	b := Band{Rel: 0.10}
	// Exactly at tolerance passes, in both directions.
	if !b.Within(110, 100) || !b.Within(90, 100) {
		t.Fatal("boundary must pass")
	}
	if b.Within(110.01, 100) || b.Within(89.99, 100) {
		t.Fatal("beyond the band must fail")
	}
	abs := Band{Abs: 1.5}
	if !abs.Within(-1.5, 0) || !abs.Within(1.5, 0) || abs.Within(1.51, 0) {
		t.Fatal("absolute band misjudged around zero")
	}
	mixed := Band{Rel: 0.05, Abs: 1}
	if !mixed.Within(106, 100) || mixed.Within(106.01, 100) {
		t.Fatal("mixed band must sum components")
	}
	if b.Within(math.NaN(), 100) || b.Within(100, math.NaN()) {
		t.Fatal("NaN must never pass")
	}
}

func TestBandMargin(t *testing.T) {
	b := Band{Rel: 0.10}
	if m := b.Margin(110, 100); math.Abs(m-1) > 1e-12 {
		t.Fatalf("at-tolerance margin = %v", m)
	}
	if m := b.Margin(120, 100); math.Abs(m-2) > 1e-12 {
		t.Fatalf("double-tolerance margin = %v", m)
	}
	if !math.IsInf(Band{}.Margin(1, 1), 1) {
		t.Fatal("empty band must have infinite margin")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	good := Expectation{Artifact: "table2", Cell: "EP.A.n1.r1", Metric: MetricBaseSeconds, Want: 23.12, Band: Band{Rel: 0.1}}
	cases := []struct {
		name string
		mut  func(*Expectation)
		want string
	}{
		{"missing artifact", func(e *Expectation) { e.Artifact = "" }, "missing artifact"},
		{"missing cell", func(e *Expectation) { e.Cell = "" }, "missing cell"},
		{"missing metric", func(e *Expectation) { e.Metric = "" }, "missing metric"},
		{"NaN want", func(e *Expectation) { e.Want = math.NaN() }, "non-finite want"},
		{"infinite want", func(e *Expectation) { e.Want = math.Inf(1) }, "non-finite want"},
		{"empty band", func(e *Expectation) { e.Band = Band{} }, "empty band"},
		{"negative band", func(e *Expectation) { e.Band = Band{Rel: -0.1} }, "negative band"},
	}
	for _, tc := range cases {
		e := good
		tc.mut(&e)
		err := ExpectationSet{Expectations: []Expectation{e}}.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	if err := (ExpectationSet{Expectations: []Expectation{good, good}}).Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate accepted: %v", err)
	}
	if err := (ExpectationSet{Expectations: []Expectation{good}}).Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := Expectations()
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseExpectations(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Expectations) != len(s.Expectations) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back.Expectations), len(s.Expectations))
	}
	for i := range s.Expectations {
		if back.Expectations[i] != s.Expectations[i] {
			t.Fatalf("entry %d changed: %+v vs %+v", i, back.Expectations[i], s.Expectations[i])
		}
	}
	if _, err := ParseExpectations([]byte(`{"expectations": [{"artifact": ""}]}`)); err == nil {
		t.Fatal("malformed entry must fail parse")
	}
	if _, err := ParseExpectations([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON must fail parse")
	}
}

func TestBuiltinExpectations(t *testing.T) {
	s := Expectations()
	if err := s.Validate(); err != nil {
		t.Fatalf("built-in set invalid: %v", err)
	}
	// Every single-node Tables 1–3 cell is pinned on all three metrics.
	n := 0
	for _, c := range Tables1to3 {
		if c.Nodes == 1 {
			n++
		}
	}
	if len(s.Expectations) != 3*n {
		t.Fatalf("expected %d expectations, got %d", 3*n, len(s.Expectations))
	}
	e := s.Find("table2", CellKey("EP", 'A', 1, 1), MetricBaseSeconds)
	if e == nil || e.Want != 23.12 {
		t.Fatalf("EP.A.n1.r1 base lookup: %+v", e)
	}
	if got := len(s.ForArtifact("table1")); got == 0 {
		t.Fatal("table1 has no expectations")
	}
	if s.Find("table9", "x", "y") != nil {
		t.Fatal("unknown key must return nil")
	}
}
