package paperdata

import (
	"encoding/json"
	"fmt"
	"math"
)

// Band is a declarative tolerance band. A measured value passes when
// |got − want| ≤ Abs + Rel·|want|; the boundary itself passes, so a
// value exactly at tolerance is accepted. Zero-valued bands are invalid
// — an expectation that tolerates nothing would only ever pass by
// floating-point accident, which is a spec bug, not a gate.
type Band struct {
	// Rel is the relative half-width (0.10 = ±10% of |want|).
	Rel float64 `json:"rel,omitempty"`
	// Abs is the absolute half-width, in the metric's own unit.
	Abs float64 `json:"abs,omitempty"`
}

// Width reports the band's half-width around want.
func (b Band) Width(want float64) float64 {
	return b.Abs + b.Rel*math.Abs(want)
}

// Within reports whether got lies inside the band around want.
func (b Band) Within(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	return math.Abs(got-want) <= b.Width(want)
}

// Margin reports how far outside the band got sits, as a fraction of
// the band's half-width: ≤ 1 passes, 2 means twice the tolerance. The
// fidelity report ranks failures by this.
func (b Band) Margin(got, want float64) float64 {
	w := b.Width(want)
	if w <= 0 {
		return math.Inf(1)
	}
	return math.Abs(got-want) / w
}

// Metric names the quantity an Expectation pins. The values mirror the
// columns of the paper's tables: the unperturbed runtime and the
// percent impact of the short and long SMM schedules.
const (
	MetricBaseSeconds = "base_s"
	MetricShortPct    = "short_pct"
	MetricLongPct     = "long_pct"
)

// Expectation pins one metric of one reproduced cell to a paper value
// within a tolerance band.
type Expectation struct {
	// Artifact is the reproduced artifact, e.g. "table2".
	Artifact string `json:"artifact"`
	// Cell addresses the cell inside the artifact, e.g. "EP.A.n1.r4".
	Cell string `json:"cell"`
	// Metric is one of the Metric* names.
	Metric string `json:"metric"`
	// Want is the paper's value.
	Want float64 `json:"want"`
	// Band is the acceptance band around Want.
	Band Band `json:"band"`
}

func (e Expectation) key() string { return e.Artifact + "/" + e.Cell + "/" + e.Metric }

// String renders the expectation for reports.
func (e Expectation) String() string {
	return fmt.Sprintf("%s %s %s = %g ± (%g + %g·|want|)", e.Artifact, e.Cell, e.Metric, e.Want, e.Band.Abs, e.Band.Rel)
}

// ExpectationSet is a validated collection of expectations.
type ExpectationSet struct {
	Expectations []Expectation `json:"expectations"`
}

// Validate rejects structurally broken sets: expectations with missing
// artifact/cell/metric fields, non-finite targets, empty tolerance
// bands, or duplicate (artifact, cell, metric) keys.
func (s ExpectationSet) Validate() error {
	seen := make(map[string]bool, len(s.Expectations))
	for i, e := range s.Expectations {
		switch {
		case e.Artifact == "":
			return fmt.Errorf("paperdata: expectation %d: missing artifact", i)
		case e.Cell == "":
			return fmt.Errorf("paperdata: expectation %d (%s): missing cell", i, e.Artifact)
		case e.Metric == "":
			return fmt.Errorf("paperdata: expectation %d (%s/%s): missing metric", i, e.Artifact, e.Cell)
		case math.IsNaN(e.Want) || math.IsInf(e.Want, 0):
			return fmt.Errorf("paperdata: expectation %s: non-finite want %v", e.key(), e.Want)
		case e.Band.Rel < 0 || e.Band.Abs < 0:
			return fmt.Errorf("paperdata: expectation %s: negative band", e.key())
		case e.Band.Rel == 0 && e.Band.Abs == 0:
			return fmt.Errorf("paperdata: expectation %s: empty band", e.key())
		}
		if seen[e.key()] {
			return fmt.Errorf("paperdata: duplicate expectation %s", e.key())
		}
		seen[e.key()] = true
	}
	return nil
}

// Find returns the expectation for a key, or nil.
func (s ExpectationSet) Find(artifact, cell, metric string) *Expectation {
	for i := range s.Expectations {
		e := &s.Expectations[i]
		if e.Artifact == artifact && e.Cell == cell && e.Metric == metric {
			return e
		}
	}
	return nil
}

// ForArtifact returns the expectations pinned to one artifact.
func (s ExpectationSet) ForArtifact(artifact string) []Expectation {
	var out []Expectation
	for _, e := range s.Expectations {
		if e.Artifact == artifact {
			out = append(out, e)
		}
	}
	return out
}

// ParseExpectations decodes and validates a JSON expectation set, so an
// externally supplied file goes through the same structural checks as
// the built-in one.
func ParseExpectations(data []byte) (ExpectationSet, error) {
	var s ExpectationSet
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("paperdata: parse expectations: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// MarshalIndent encodes the set for storage.
func (s ExpectationSet) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CellKey builds the canonical cell address used by Expectations and
// the fidelity harness: bench.class.n<nodes>.r<ranks-per-node>.
func CellKey(bench string, class byte, nodes, rpn int) string {
	return fmt.Sprintf("%s.%c.n%d.r%d", bench, class, nodes, rpn)
}

// tableArtifact maps a bench name to its table artifact name.
func tableArtifact(bench string) string {
	switch bench {
	case "BT":
		return "table1"
	case "EP":
		return "table2"
	case "FT":
		return "table3"
	}
	return ""
}

// baselineBand is the calibrated per-cell acceptance band on the
// unperturbed runtime. Only single-node cells carry per-cell bands: the
// reproduction's communication model is calibrated against the paper's
// single-node runs, while its multi-node scaling diverges from the
// Wyeast cluster's measured network (the paper's own Tables 1 and 3
// show non-monotone multi-node artifacts the authors attribute to the
// machine, not to SMM). Multi-node fidelity is judged by the aggregate
// and ordering gates in internal/fidelity instead.
func baselineBand(bench string, rpn int) Band {
	switch bench {
	case "EP":
		// Embarrassingly parallel: no communication to mis-model.
		return Band{Rel: 0.10}
	case "BT":
		if rpn == 1 {
			return Band{Rel: 0.05}
		}
		return Band{Rel: 0.20}
	case "FT":
		if rpn == 1 {
			return Band{Rel: 0.10}
		}
		return Band{Rel: 0.35}
	}
	return Band{}
}

// Expectations returns the built-in expectation set: every single-node
// cell of Tables 1–3, pinned on its unperturbed runtime and on the
// short/long SMM percent impacts. The percent bands are absolute — the
// paper's long-SMM impact on one node clusters near the analytic
// duty-cycle bound (~10.5%), and the short impact near zero, so a
// relative band would be degenerate for the short column.
func Expectations() ExpectationSet {
	var s ExpectationSet
	for _, c := range Tables1to3 {
		if c.Nodes != 1 {
			continue
		}
		art := tableArtifact(c.Bench)
		cell := CellKey(c.Bench, c.Class, c.Nodes, c.RanksPerNode)
		s.Expectations = append(s.Expectations,
			Expectation{Artifact: art, Cell: cell, Metric: MetricBaseSeconds,
				Want: c.SMM0, Band: baselineBand(c.Bench, c.RanksPerNode)},
			Expectation{Artifact: art, Cell: cell, Metric: MetricShortPct,
				Want: c.PctShort(), Band: Band{Abs: 1.6}},
			Expectation{Artifact: art, Cell: cell, Metric: MetricLongPct,
				Want: c.PctLong(), Band: Band{Abs: 3.0}},
		)
	}
	return s
}
