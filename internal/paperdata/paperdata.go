// Package paperdata embeds the numbers published in the paper's Tables
// 1–5, so comparisons between the simulator and the paper are data, not
// prose: the experiment harness joins regenerated results against these
// values and reports deltas, and validation tests pin the cells the
// reproduction is expected to match.
//
// Values are transcribed from the paper. Seconds; SMM0/1/2 are the
// no/short/long injection columns.
package paperdata

// Cell is one measured configuration from Tables 1–3.
type Cell struct {
	Bench        string
	Class        byte
	Nodes        int // the tables' "MPI rks" column counts nodes
	RanksPerNode int
	SMM0         float64
	SMM1         float64
	SMM2         float64
}

// HTTCell is one configuration from Tables 4–5 (4 ranks/node).
type HTTCell struct {
	Bench string
	Class byte
	Nodes int
	// Ht0/Ht1 hold SMM0/1/2 for hyper-threading off/on.
	Ht0, Ht1 [3]float64
}

// Tables1to3 holds every populated cell of the paper's Tables 1–3.
var Tables1to3 = []Cell{
	// Table 1 — BT, 1 rank per node.
	{"BT", 'A', 1, 1, 86.87, 86.89, 96.24},
	{"BT", 'A', 4, 1, 27.44, 27.57, 39.53},
	{"BT", 'A', 16, 1, 48.51, 48.93, 95.23},
	{"BT", 'B', 1, 1, 369.7, 369.55, 409.36},
	{"BT", 'B', 4, 1, 108.1, 108.58, 148.39},
	{"BT", 'B', 16, 1, 123.79, 124.44, 179.56},
	{"BT", 'C', 1, 1, 1585.75, 1585.95, 1756.33},
	{"BT", 'C', 4, 1, 419.75, 420.67, 537.73},
	{"BT", 'C', 16, 1, 336.84, 336.58, 439.49},
	// Table 1 — BT, 4 ranks per node.
	{"BT", 'A', 1, 4, 24.89, 24.88, 27.55},
	{"BT", 'A', 4, 4, 53.78, 50.93, 64.13},
	{"BT", 'A', 16, 4, 103.27, 102.39, 173.93},
	{"BT", 'B', 1, 4, 103.44, 103.4, 114.52},
	{"BT", 'B', 4, 4, 85.53, 85.31, 108.94},
	{"BT", 'B', 16, 4, 173.78, 174.77, 262.97},
	{"BT", 'C', 1, 4, 424.39, 424.51, 470.35},
	{"BT", 'C', 4, 4, 219.86, 218.9, 281.38},
	{"BT", 'C', 16, 4, 402.26, 403.79, 535.67},

	// Table 2 — EP, 1 rank per node.
	{"EP", 'A', 1, 1, 23.12, 23.18, 25.66},
	{"EP", 'A', 2, 1, 11.69, 11.6, 13.15},
	{"EP", 'A', 4, 1, 5.84, 5.8, 6.77},
	{"EP", 'A', 8, 1, 2.92, 2.94, 3.5},
	{"EP", 'A', 16, 1, 1.46, 1.47, 2.04},
	{"EP", 'B', 1, 1, 92.72, 93.17, 102.5},
	{"EP", 'B', 2, 1, 46.35, 46.59, 52.58},
	{"EP", 'B', 4, 1, 23.33, 23.28, 26.71},
	{"EP", 'B', 8, 1, 11.67, 11.74, 13.51},
	{"EP", 'B', 16, 1, 5.86, 5.9, 7.03},
	{"EP", 'C', 1, 1, 370.67, 372.53, 411.19},
	{"EP", 'C', 2, 1, 185.1, 185.87, 210.03},
	{"EP", 'C', 4, 1, 93.36, 93.34, 106.47},
	{"EP", 'C', 8, 1, 46.9, 47.09, 53.59},
	{"EP", 'C', 16, 1, 24.94, 25.16, 28.49},
	// Table 2 — EP, 4 ranks per node.
	{"EP", 'A', 1, 4, 5.87, 5.87, 6.47},
	{"EP", 'A', 2, 4, 2.93, 2.93, 3.35},
	{"EP", 'A', 4, 4, 1.47, 1.47, 1.75},
	{"EP", 'A', 8, 4, 0.73, 0.74, 0.95},
	{"EP", 'A', 16, 4, 0.37, 0.42, 0.65},
	{"EP", 'B', 1, 4, 23.49, 23.42, 25.97},
	{"EP", 'B', 2, 4, 11.71, 11.66, 13.27},
	{"EP", 'B', 4, 4, 5.9, 5.93, 6.77},
	{"EP", 'B', 8, 4, 2.96, 2.95, 3.58},
	{"EP", 'B', 16, 4, 1.59, 1.49, 2.06},
	{"EP", 'C', 1, 4, 93.86, 93.33, 104},
	{"EP", 'C', 2, 4, 46.96, 46.85, 53.01},
	{"EP", 'C', 4, 4, 23.47, 23.48, 28.32},
	{"EP", 'C', 8, 4, 11.78, 12.61, 13.66},
	{"EP", 'C', 16, 4, 5.91, 5.9, 7.53},

	// Table 3 — FT, 1 rank per node (class C, 1–2 nodes unmeasured).
	{"FT", 'A', 1, 1, 7.64, 7.61, 8.41},
	{"FT", 'A', 2, 1, 6.22, 6.21, 7.96},
	{"FT", 'A', 4, 1, 4.25, 4.24, 6.05},
	{"FT", 'A', 8, 1, 2.22, 2.22, 4.32},
	{"FT", 'A', 16, 1, 6.5, 6.39, 10.43},
	{"FT", 'B', 1, 1, 95.48, 95.65, 106.09},
	{"FT", 'B', 2, 1, 76.35, 76.31, 91.46},
	{"FT", 'B', 4, 1, 51.85, 51.73, 67.24},
	{"FT", 'B', 8, 1, 26.74, 26.74, 41.52},
	{"FT", 'B', 16, 1, 82.18, 82.96, 110.93},
	{"FT", 'C', 4, 1, 216.75, 216.58, 264.44},
	{"FT", 'C', 8, 1, 111.31, 111.44, 145.04},
	{"FT", 'C', 16, 1, 315.42, 313.81, 419.34},
	// Table 3 — FT, 4 ranks per node.
	{"FT", 'A', 1, 4, 2.49, 2.49, 2.78},
	{"FT", 'A', 2, 4, 3.34, 3.34, 4.21},
	{"FT", 'A', 4, 4, 5.69, 5.49, 6.96},
	{"FT", 'A', 8, 4, 9.51, 9.22, 13.6},
	{"FT", 'A', 16, 4, 20.57, 20.51, 28.42},
	{"FT", 'B', 1, 4, 31.2, 31.2, 34.53},
	{"FT", 'B', 2, 4, 40.46, 40.38, 49.97},
	{"FT", 'B', 4, 4, 39.46, 39.65, 52.37},
	{"FT", 'B', 8, 4, 56.19, 58.01, 74.52},
	{"FT", 'B', 16, 4, 127.33, 127.28, 157.82},
	{"FT", 'C', 1, 4, 135.96, 136.09, 150.59},
	{"FT", 'C', 2, 4, 163.06, 165.12, 200.84},
	{"FT", 'C', 4, 4, 125.66, 126.34, 163.17},
	{"FT", 'C', 8, 4, 107.47, 107.88, 141.09},
	{"FT", 'C', 16, 4, 339, 337.92, 412.11},
}

// Tables4and5 holds the paper's HTT comparison cells.
var Tables4and5 = []HTTCell{
	// Table 4 — EP.
	{"EP", 'A', 1, [3]float64{5.87, 5.87, 6.47}, [3]float64{5.81, 5.81, 6.78}},
	{"EP", 'A', 2, [3]float64{2.93, 2.93, 3.35}, [3]float64{2.91, 2.93, 3.45}},
	{"EP", 'A', 4, [3]float64{1.47, 1.47, 1.75}, [3]float64{1.46, 1.46, 1.77}},
	{"EP", 'A', 8, [3]float64{0.73, 0.74, 0.95}, [3]float64{0.74, 0.74, 0.99}},
	{"EP", 'A', 16, [3]float64{0.37, 0.42, 0.65}, [3]float64{0.39, 0.39, 0.88}},
	{"EP", 'B', 1, [3]float64{23.49, 23.42, 25.97}, [3]float64{23.3, 23.24, 26.94}},
	{"EP", 'B', 2, [3]float64{11.71, 11.66, 13.27}, [3]float64{11.69, 11.7, 13.56}},
	{"EP", 'B', 4, [3]float64{5.9, 5.93, 6.77}, [3]float64{5.86, 6.67, 6.85}},
	{"EP", 'B', 8, [3]float64{2.96, 2.95, 3.58}, [3]float64{2.95, 2.94, 3.56}},
	{"EP", 'B', 16, [3]float64{1.59, 1.49, 2.06}, [3]float64{1.48, 1.5, 2.14}},
	{"EP", 'C', 1, [3]float64{93.86, 93.33, 104}, [3]float64{93.24, 93.33, 108.2}},
	{"EP", 'C', 2, [3]float64{46.96, 46.85, 53.01}, [3]float64{46.43, 47.18, 53.94}},
	{"EP", 'C', 4, [3]float64{23.47, 23.48, 28.32}, [3]float64{23.44, 23.49, 27.39}},
	{"EP", 'C', 8, [3]float64{11.78, 12.61, 13.66}, [3]float64{11.71, 11.76, 13.77}},
	{"EP", 'C', 16, [3]float64{5.91, 5.9, 7.53}, [3]float64{5.91, 5.93, 7.58}},
	// Table 5 — FT.
	{"FT", 'A', 1, [3]float64{2.49, 2.49, 2.78}, [3]float64{2.49, 2.49, 2.89}},
	{"FT", 'A', 2, [3]float64{3.34, 3.34, 4.21}, [3]float64{3.33, 3.33, 4.19}},
	{"FT", 'A', 4, [3]float64{5.69, 5.49, 6.96}, [3]float64{5.63, 5.28, 6.97}},
	{"FT", 'A', 8, [3]float64{9.51, 9.22, 13.6}, [3]float64{9.78, 9.89, 12.33}},
	{"FT", 'A', 16, [3]float64{20.57, 20.51, 28.42}, [3]float64{20.21, 20.1, 25.69}},
	{"FT", 'B', 1, [3]float64{31.2, 31.2, 34.53}, [3]float64{31.08, 31.13, 35.94}},
	{"FT", 'B', 2, [3]float64{40.46, 40.38, 49.97}, [3]float64{40.41, 40.3, 50.18}},
	{"FT", 'B', 4, [3]float64{39.46, 39.65, 52.37}, [3]float64{39.78, 39.41, 48.86}},
	{"FT", 'B', 8, [3]float64{56.19, 58.01, 74.52}, [3]float64{57.09, 56.23, 69.18}},
	{"FT", 'B', 16, [3]float64{127.33, 127.28, 157.82}, [3]float64{127.74, 129.95, 154.64}},
	{"FT", 'C', 1, [3]float64{135.96, 136.09, 150.59}, [3]float64{135.59, 135.5, 157.04}},
	{"FT", 'C', 2, [3]float64{163.06, 165.12, 200.84}, [3]float64{165.57, 164.33, 206.55}},
	{"FT", 'C', 4, [3]float64{125.66, 126.34, 163.17}, [3]float64{125.8, 125.57, 160.26}},
	{"FT", 'C', 8, [3]float64{107.47, 107.88, 141.09}, [3]float64{108.15, 106.92, 134.8}},
	{"FT", 'C', 16, [3]float64{339, 337.92, 412.11}, [3]float64{331.25, 330.41, 392.96}},
}

// Find returns the Tables 1–3 cell for a configuration, or nil.
func Find(bench string, class byte, nodes, rpn int) *Cell {
	for i := range Tables1to3 {
		c := &Tables1to3[i]
		if c.Bench == bench && c.Class == class && c.Nodes == nodes && c.RanksPerNode == rpn {
			return c
		}
	}
	return nil
}

// PctLong is the paper's long-SMM percent impact for the cell.
func (c Cell) PctLong() float64 { return (c.SMM2 - c.SMM0) / c.SMM0 * 100 }

// PctShort is the paper's short-SMM percent impact for the cell.
func (c Cell) PctShort() float64 { return (c.SMM1 - c.SMM0) / c.SMM0 * 100 }
