package paperdata

import "testing"

func TestTableCompleteness(t *testing.T) {
	// Tables 1-3 populated cells: BT 9+9, EP 15+15, FT 13+15.
	if len(Tables1to3) != 76 {
		t.Fatalf("cells = %d, want 76", len(Tables1to3))
	}
	counts := map[string]int{}
	for _, c := range Tables1to3 {
		counts[c.Bench]++
	}
	if counts["BT"] != 18 || counts["EP"] != 30 || counts["FT"] != 28 {
		t.Fatalf("per-bench counts = %v", counts)
	}
	if len(Tables4and5) != 30 {
		t.Fatalf("HTT cells = %d, want 30", len(Tables4and5))
	}
}

func TestCellsWellFormed(t *testing.T) {
	seen := map[Cell]bool{}
	for _, c := range Tables1to3 {
		key := Cell{Bench: c.Bench, Class: c.Class, Nodes: c.Nodes, RanksPerNode: c.RanksPerNode}
		if seen[key] {
			t.Errorf("duplicate cell %+v", key)
		}
		seen[key] = true
		if c.SMM0 <= 0 || c.SMM1 <= 0 || c.SMM2 <= 0 {
			t.Errorf("non-positive times in %+v", c)
		}
		if c.SMM2 <= c.SMM0*0.9 {
			t.Errorf("long SMM faster than base in %+v (transcription error?)", c)
		}
	}
}

func TestFind(t *testing.T) {
	c := Find("EP", 'A', 1, 1)
	if c == nil || c.SMM0 != 23.12 {
		t.Fatalf("EP.A 1/1 lookup failed: %+v", c)
	}
	if Find("EP", 'Z', 1, 1) != nil {
		t.Fatal("phantom cell found")
	}
	if Find("FT", 'C', 1, 1) != nil {
		t.Fatal("the paper leaves FT.C 1-node 1-rpn unmeasured")
	}
}

func TestPctHelpers(t *testing.T) {
	c := Cell{SMM0: 100, SMM1: 101, SMM2: 110}
	if c.PctShort() != 1 || c.PctLong() != 10 {
		t.Fatalf("pct helpers wrong: %v %v", c.PctShort(), c.PctLong())
	}
}

// The paper's own headline claims, asserted on its own data: single-node
// long-SMM impact ≈ 10-11% everywhere; short-SMM impact ≤ 1.5% in all
// single-node cells.
func TestPaperHeadlineClaims(t *testing.T) {
	for _, c := range Tables1to3 {
		if c.Nodes != 1 || c.RanksPerNode != 1 {
			continue
		}
		if p := c.PctLong(); p < 9.5 || p > 11.5 {
			t.Errorf("%s.%c single-node long impact %.1f%%, expected ≈10-11%%", c.Bench, c.Class, p)
		}
		if p := c.PctShort(); p > 1.5 || p < -1.5 {
			t.Errorf("%s.%c single-node short impact %.1f%%, expected ≈0", c.Bench, c.Class, p)
		}
	}
}
