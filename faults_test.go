package smistudy_test

import (
	"errors"
	"testing"

	"smistudy"
	"smistudy/internal/sim"
)

// TestNASOverLossyFabric is the fault subsystem's acceptance case: EP
// class A over a 1% lossy fabric completes via retransmission, with the
// recovery visible in the counters.
func TestNASOverLossyFabric(t *testing.T) {
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 4, RanksPerNode: 1,
		Seed:   4, // a seed whose loss draws hit EP's small message count
		Faults: &smistudy.FaultPlan{LossProb: 0.01},
	})
	if err != nil {
		t.Fatalf("EP.A over a 1%% lossy fabric failed: %v", err)
	}
	if !res.Verified {
		t.Error("run not verified")
	}
	if res.Dropped == 0 || res.Retransmits == 0 {
		t.Fatalf("loss left no trace: %d drops, %d retransmits", res.Dropped, res.Retransmits)
	}
}

// TestNASLossyHeavyTraffic drives the transport hard: FT's all-to-alls
// under loss produce real and spurious (congestion) retransmissions,
// all deduplicated, and the run still completes and verifies.
func TestNASLossyHeavyTraffic(t *testing.T) {
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.FT, Class: smistudy.ClassA,
		Nodes: 4, RanksPerNode: 1, Seed: 1,
		Faults: &smistudy.FaultPlan{LossProb: 0.01},
	})
	if err != nil {
		t.Fatalf("FT.A over a 1%% lossy fabric failed: %v", err)
	}
	if !res.Verified {
		t.Error("run not verified")
	}
	if res.Dropped == 0 || res.Retransmits == 0 {
		t.Fatalf("loss left no trace: %d drops, %d retransmits", res.Dropped, res.Retransmits)
	}
}

// TestNASCrashFailsBounded is the other acceptance case: the same run
// with one node crashed mid-run comes back with an attributed error —
// ErrPeerUnreachable or a watchdog no-progress report — within bounded
// simulated time, instead of deadlocking.
func TestNASCrashFailsBounded(t *testing.T) {
	_, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 4, RanksPerNode: 1, Seed: 4,
		Watchdog: 10 * sim.Second,
		Faults: &smistudy.FaultPlan{
			LossProb:  0.01,
			CrashNode: 1,
			CrashAt:   3 * sim.Second,
		},
	})
	if err == nil {
		t.Fatal("run with a crashed node succeeded")
	}
	var np *smistudy.NoProgressError
	if !errors.Is(err, smistudy.ErrPeerUnreachable) && !errors.As(err, &np) {
		t.Fatalf("err = %v, want ErrPeerUnreachable or NoProgressError", err)
	}
	if np != nil {
		// The report must place the failure within the watchdog's
		// detection bound, not at some unbounded later time.
		if np.At > 60*sim.Second {
			t.Fatalf("no-progress detected at t=%v, want bounded", np.At)
		}
		down := 0
		for _, r := range np.Ranks {
			if r.State == "node down" {
				down++
			}
		}
		if down != 1 {
			t.Errorf("report marks %d ranks node-down, want 1", down)
		}
	}
}
