// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation, plus ablations for the load-bearing design choices
// (SMI phase jitter across nodes, fabric incast congestion, SMM timer
// deferral). Each benchmark regenerates its experiment at reduced
// ("quick") scale per iteration and reports the experiment's headline
// quantity as a custom metric; run the full-scale regeneration with
// cmd/smibench.
//
//	go test -bench=. -benchmem
//	go test -bench=Table2 -benchtime=1x
package smistudy_test

import (
	"testing"

	"smistudy"
	"smistudy/internal/cluster"
	"smistudy/internal/experiments"
	"smistudy/internal/kernel"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/netsim"
	"smistudy/internal/parsweep"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

func quickCfg() experiments.Config {
	return experiments.Config{Quick: true, Runs: 1, Seed: 1}
}

// BenchmarkTable1BT regenerates Table 1 (BT under SMM 0/1/2) at quick
// scale and reports the worst long-SMM impact observed.
func BenchmarkTable1BT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, row := range t.Rows {
			if p := row.One.PctLong(); p > worst {
				worst = p
			}
		}
		b.ReportMetric(worst, "worst-long-impact-%")
	}
}

// BenchmarkTable1BTParallel is BenchmarkTable1BT with the sweep cells
// fanned over every CPU; the table itself is byte-identical, only the
// wall time changes.
func BenchmarkTable1BTParallel(b *testing.B) {
	cfg := quickCfg()
	cfg.Workers = parsweep.Workers(0)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2EP regenerates Table 2 (EP under SMM 0/1/2).
func BenchmarkTable2EP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].One.PctLong(), "1node-long-impact-%")
	}
}

// BenchmarkTable3FT regenerates Table 3 (FT under SMM 0/1/2).
func BenchmarkTable3FT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Four.PctLong(), "long-impact-%")
	}
}

// BenchmarkTable4EPHTT regenerates Table 4 (HTT effect on EP).
func BenchmarkTable4EPHTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		row := t.Rows[len(t.Rows)-1]
		b.ReportMetric(row.On.SMM2-row.Off.SMM2, "htt-long-delta-s")
	}
}

// BenchmarkTable5FTHTT regenerates Table 5 (HTT effect on FT).
func BenchmarkTable5FTHTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table5(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		row := t.Rows[len(t.Rows)-1]
		b.ReportMetric(row.On.SMM2-row.Off.SMM2, "htt-long-delta-s")
	}
}

// BenchmarkFigure1Convolve regenerates Figure 1 (Convolve vs SMI
// interval and CPU count) and reports the 50ms-vs-1500ms blowup.
func BenchmarkFigure1Convolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure1Convolve(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		var at50, at1500 float64
		for _, p := range f.Points {
			if p.Behavior == smistudy.CacheFriendly && p.CPUs == 4 {
				switch p.IntervalMS {
				case 50:
					at50 = p.Seconds
				case 1500:
					at1500 = p.Seconds
				}
			}
		}
		b.ReportMetric(at50/at1500, "50ms-blowup-x")
	}
}

// BenchmarkFigure2UnixBench regenerates Figure 2 (UnixBench score vs SMI
// interval) and reports the score loss at 100ms intervals.
func BenchmarkFigure2UnixBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure2UnixBench(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		var at100, at1600 float64
		for _, p := range f.Points {
			if p.CPUs == 4 {
				switch p.IntervalMS {
				case 100:
					at100 = p.Score
				case 1600:
					at1600 = p.Score
				}
			}
		}
		b.ReportMetric((1-at100/at1600)*100, "100ms-score-loss-%")
	}
}

// --- ablations -------------------------------------------------------------

// runEPCluster runs EP.A on a 8-node cluster with a tweakable parameter
// set and returns the runtime in seconds.
func runEPCluster(seed int64, mutate func(*cluster.Params)) float64 {
	e := sim.New(seed)
	par := cluster.Wyeast(8, false, smm.SMMLong)
	if mutate != nil {
		mutate(&par)
	}
	cl := cluster.MustNew(e, par)
	cl.StartSMI()
	w := mpi.MustNewWorld(cl, 1, mpi.DefaultParams())
	res, err := nas.Run(w, nas.Spec{Bench: nas.EP, Class: nas.ClassA})
	if err != nil {
		panic(err)
	}
	return res.Time.Seconds()
}

// BenchmarkAblationPhaseJitter compares desynchronized SMI phases across
// nodes (the default; matches reality) against lock-step SMIs. Lock-step
// noise is mostly absorbed — every node stalls together — so jitter is
// what makes multi-node amplification appear.
func BenchmarkAblationPhaseJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		jittered := runEPCluster(1, nil)
		lockstep := runEPCluster(1, func(p *cluster.Params) {
			p.Node.SMI.PhaseJitter = false
		})
		b.ReportMetric(jittered/lockstep, "jitter-vs-lockstep-x")
	}
}

// BenchmarkAblationCongestion compares FT with and without the fabric's
// incast-congestion model: without it the all-to-all pattern scales far
// too well compared to the paper's gigabit cluster.
func BenchmarkAblationCongestion(b *testing.B) {
	runFT := func(beta float64) float64 {
		e := sim.New(1)
		par := cluster.Wyeast(4, false, smm.SMMNone)
		par.Fabric.CongestionBeta = beta
		cl := cluster.MustNew(e, par)
		w := mpi.MustNewWorld(cl, 4, mpi.DefaultParams())
		res, err := nas.Run(w, nas.Spec{Bench: nas.FT, Class: nas.ClassA})
		if err != nil {
			panic(err)
		}
		return res.Time.Seconds()
	}
	for i := 0; i < b.N; i++ {
		with := runFT(netsim.GigabitEthernet().CongestionBeta)
		without := runFT(0)
		b.ReportMetric(with/without, "congestion-slowdown-x")
	}
}

// BenchmarkAblationRendezvousCost compares the per-logical-CPU SMM
// rendezvous cost on vs off: it is the mechanism by which enabling HTT
// lengthens every SMI.
func BenchmarkAblationRendezvousCost(b *testing.B) {
	residency := func(perCPU sim.Time) float64 {
		e := sim.New(1)
		par := cluster.Wyeast(1, true, smm.SMMLong)
		par.Node.PerCPURendezvous = perCPU
		cl := cluster.MustNew(e, par)
		cl.StartSMI()
		e.RunUntil(20 * sim.Second)
		return cl.Nodes[0].SMM.Stats().TotalResidency.Seconds()
	}
	for i := 0; i < b.N; i++ {
		with := residency(400 * sim.Microsecond)
		without := residency(0)
		b.ReportMetric(with/without, "rendezvous-residency-x")
	}
}

// BenchmarkEngineEvents measures raw engine throughput: how many
// schedule+dispatch cycles per second the simulator core sustains.
// With the event free list this is 0 allocs/op at steady state.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	b.ResetTimer()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
}

// BenchmarkMPIAlltoall measures the simulator cost of a 16-rank
// all-to-all, the hottest communication pattern in the FT study.
func BenchmarkMPIAlltoall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.New(1)
		cl := cluster.MustNew(e, cluster.Wyeast(4, false, smm.SMMNone))
		w := mpi.MustNewWorld(cl, 4, mpi.DefaultParams())
		w.Run(nas.Profile(nas.FT), func(r *mpi.Rank, t *kernel.Task) {
			for iter := 0; iter < 5; iter++ {
				r.Alltoall(t, 64<<10)
			}
		})
	}
}

// BenchmarkAblationEagerLimit compares the MPI eager/rendezvous
// threshold's effect on FT: forcing every message through rendezvous
// adds two fabric round trips per transfer.
func BenchmarkAblationEagerLimit(b *testing.B) {
	runFT := func(eager int) float64 {
		e := sim.New(1)
		cl := cluster.MustNew(e, cluster.Wyeast(4, false, smm.SMMNone))
		par := mpi.DefaultParams()
		par.EagerLimit = eager
		w := mpi.MustNewWorld(cl, 1, par)
		res, err := nas.Run(w, nas.Spec{Bench: nas.FT, Class: nas.ClassA})
		if err != nil {
			panic(err)
		}
		return res.Time.Seconds()
	}
	for i := 0; i < b.N; i++ {
		rendezvousOnly := runFT(0)
		def := runFT(mpi.DefaultParams().EagerLimit)
		b.ReportMetric(rendezvousOnly/def, "rendezvous-only-x")
	}
}

// BenchmarkExtensionRIM reports the throughput cost of a
// HyperSentry-class integrity agent (25 MB at 1/s, whole-measurement).
func BenchmarkExtensionRIM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := smistudy.RunRIM(smistudy.RIMOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SlowdownPct, "rim-slowdown-%")
	}
}

// BenchmarkExtensionEnergy reports the extra energy long SMIs cost for
// fixed work.
func BenchmarkExtensionEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := smistudy.MeasureEnergy(smistudy.SMM2, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EnergyIncreasePct, "extra-energy-%")
	}
}

// BenchmarkDetectorAccuracy reports the spin-loop detector's match rate
// against ground truth under 1/s long SMIs.
func BenchmarkDetectorAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := smistudy.DetectSMIs(smistudy.DetectOptions{
			Level: smistudy.SMM2, SMIIntervalMS: 1000, Duration: 10 * sim.Second,
		})
		total := rep.Matched + rep.Missed
		if total == 0 {
			b.Fatal("no ground-truth episodes")
		}
		b.ReportMetric(float64(rep.Matched)/float64(total)*100, "detect-rate-%")
	}
}
