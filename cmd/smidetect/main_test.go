package main

import (
	"testing"

	"smistudy"
)

func TestParseLevel(t *testing.T) {
	want := map[string]smistudy.SMMLevel{
		"none":  smistudy.SMM0,
		"short": smistudy.SMM1,
		"long":  smistudy.SMM2,
	}
	for s, w := range want {
		lv, err := parseLevel(s)
		if err != nil || lv != w {
			t.Fatalf("parseLevel(%q) = %v, %v", s, lv, err)
		}
	}
	for _, s := range []string{"", "LONG", "2", "medium"} {
		if _, err := parseLevel(s); err == nil {
			t.Fatalf("parseLevel(%q) accepted", s)
		}
	}
}
