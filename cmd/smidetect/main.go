// Command smidetect demonstrates the tooling side of the study: a
// hwlat-style spin-loop SMI detector validated against the simulator's
// ground truth, and the per-task time-misattribution report a profiler
// on an SMI-afflicted machine would silently get wrong.
//
// Usage:
//
//	smidetect                         # detect long SMIs at 1/s for 10s
//	smidetect -level short -interval 250
//	smidetect -attribution            # misattribution demo instead
package main

import (
	"flag"
	"fmt"
	"os"

	"smistudy"
	"smistudy/internal/noise"
	"smistudy/internal/obs"
	"smistudy/internal/sim"
)

func main() {
	level := flag.String("level", "long", "SMI level to inject: none, short, long")
	interval := flag.Int("interval", 1000, "SMI interval in ms (jiffies)")
	duration := flag.Float64("duration", 10, "detector spin duration in seconds")
	jitterPeriod := flag.Float64("jitter-period", 0, "also inject OS jitter with this tick period in ms (0 disables)")
	jitterDur := flag.Float64("jitter-dur", 200, "OS-jitter steal duration per tick in µs")
	jitterFrac := flag.Float64("jitter-frac", 0.2, "OS-jitter period randomization fraction [0,1)")
	attribution := flag.Bool("attribution", false, "show the misattribution report instead")
	traceOut := flag.String("trace", "", "write a Chrome trace-event timeline of a workload under SMIs to this file")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	// Validate before the -trace/-attribution early returns so a bad
	// flag always errors instead of being silently ignored on those
	// paths.
	lv, err := parseLevel(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smidetect:", err)
		os.Exit(2)
	}
	if *interval < 1 || *duration <= 0 {
		fmt.Fprintf(os.Stderr, "smidetect: -interval must be ≥ 1 ms and -duration > 0 s (got %d, %g)\n",
			*interval, *duration)
		os.Exit(2)
	}
	var jitter []smistudy.JitterConfig
	if *jitterPeriod > 0 {
		jc := smistudy.JitterConfig{
			Period:   sim.FromSeconds(*jitterPeriod / 1e3),
			Duration: sim.FromSeconds(*jitterDur / 1e6),
			Jitter:   *jitterFrac,
			Seed:     *seed,
		}
		if err := jc.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "smidetect:", err)
			os.Exit(2)
		}
		jitter = append(jitter, jc)
	}

	if *traceOut != "" {
		data, err := smistudy.TraceWorkload(*duration, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smidetect:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "smidetect:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s — open it in chrome://tracing or Perfetto to see\n", *traceOut)
		fmt.Println("the SMM episodes interleaved with the tasks they stalled.")
		return
	}

	if *attribution {
		a := smistudy.AttributeNAS(*seed)
		fmt.Println("Per-task CPU time as the kernel reports it vs ground truth")
		fmt.Println("(long SMIs at 1/s; the kernel charges SMM residency to the victim):")
		fmt.Println()
		fmt.Print(a.Table())
		return
	}

	// The detector is scored twice: once by DetectSMIs against the SMM
	// controller's private episode log, and once here against the
	// episodes reconstructed from the observability bus — the same
	// ground truth, but via the public trace path, validating that a
	// captured trace is enough to audit a detector after the fact.
	ring := obs.NewRingSink(1 << 16)
	bus := obs.NewBus().Attach(obs.FilterSink{Cat: obs.CatSMM, Sink: ring})
	rep := smistudy.DetectSMIs(smistudy.DetectOptions{
		Level:         lv,
		SMIIntervalMS: *interval,
		Duration:      sim.FromSeconds(*duration),
		Seed:          *seed,
		Jitter:        jitter,
		Tracer:        bus,
	})
	fmt.Printf("spin-loop detector: %d detections over %.1fs\n", len(rep.Detections), *duration)
	fmt.Printf("  ground truth matched: %d   missed: %d   false positives: %d\n",
		rep.Matched, rep.Missed, rep.FalsePositives)
	fmt.Printf("  precision: %.2f   recall: %.2f\n", rep.Precision(), rep.Recall())
	for _, f := range rep.Families {
		fmt.Printf("  family %-9s ground truth: %d   matched: %d   missed: %d   recall: %.2f\n",
			f.Family, f.GroundTruth, f.Matched, f.Missed, f.Recall())
	}
	fmt.Printf("  max latency gap: %v\n", rep.MaxLatency)
	for i, d := range rep.Detections {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(rep.Detections)-10)
			break
		}
		fmt.Printf("  gap at %v: %v\n", d.At, d.Latency)
	}

	eps := noise.EpisodesFromEvents(ring.Events(), 0)
	overlay := noise.Score(rep.Detections, eps)
	fmt.Printf("\noverlay vs bus-captured SMM events (%d episodes on the bus):\n", len(eps))
	fmt.Printf("  matched: %d   missed: %d   false positives: %d\n",
		overlay.Matched, overlay.Missed, overlay.FalsePositives)
	fmt.Printf("  precision: %.2f   recall: %.2f\n", overlay.Precision(), overlay.Recall())
	if ring.Dropped() > 0 {
		fmt.Printf("  (ring sink dropped %d events; overlay is partial)\n", ring.Dropped())
	}
}

// parseLevel maps the -level flag to an injection level.
func parseLevel(s string) (smistudy.SMMLevel, error) {
	switch s {
	case "none":
		return smistudy.SMM0, nil
	case "short":
		return smistudy.SMM1, nil
	case "long":
		return smistudy.SMM2, nil
	}
	return 0, fmt.Errorf("unknown level %q (want none, short or long)", s)
}
