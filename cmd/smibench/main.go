// Command smibench regenerates the paper's tables and figures.
//
// Usage:
//
//	smibench -table 1          # Table 1 (BT, SMM 0/1/2)
//	smibench -table 4          # Table 4 (HTT × EP)
//	smibench -figure 1         # Figure 1 (Convolve)
//	smibench -figure 2         # Figure 2 (UnixBench)
//	smibench -all              # everything
//	smibench -all -quick       # reduced grids, 1 run per cell
//	smibench -all -parallel 0  # fan sweep cells over every CPU
//	smibench -figure 1 -csv    # raw points as CSV
//	smibench -benchjson results/BENCH_sweeps.json  # perf baseline
//	smibench -table 1 -trace t.json -metrics m.json -manifest man.json
//	smibench -all -store results/store -resume     # durable, resumable
//	smibench -all -fastpath auto                   # analytic dispatch
//
// Every run is deterministic for a given -seed; -runs overrides the
// paper's per-cell averaging (6 for MPI tables, 3 for figures).
// -parallel runs independent sweep cells concurrently (1 = sequential,
// 0 = all CPUs) without changing any output byte: every cell owns its
// own simulation engine, and results are assembled in sweep order.
//
// -fastpath auto lets the analytic dispatcher serve steady-state cells
// from certified regions without simulating them — byte-identical to
// -fastpath off, proven per region at runtime (see internal/runner
// dispatch.go); -fastpath model serves the closed-form prediction
// itself (approximate, opt-in). -shards N partitions each cell's
// per-node event streams over N engine shards; cells that cannot shard
// byte-identically fall back to the sequential engine. The manifest
// written by -manifest records the dispatcher's full accounting (hits,
// misses with reasons, certification evidence counts) after the run.
//
// -benchjson runs the sweep suite at quick scale sequentially and at
// the -parallel worker count, recording wall time and allocations per
// sweep plus the sim engine's per-event cost, and writes the report as
// JSON to the given file.
//
// -store checkpoints every finished sweep cell in a content-addressed
// result store; with -resume a rerun replays the checkpointed cells
// byte-identically and only simulates what is missing, so a killed
// regeneration picks up where it stopped. -cell-timeout and -retries
// bound and retry individual cells. SIGINT cancels the sweep cleanly:
// sinks are flushed and the exit code is 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"smistudy"
	"smistudy/internal/durable"
	"smistudy/internal/experiments"
	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(benchMain(ctx))
}

// exitCode is the sentinel benchMain panics with to unwind through the
// deferred sink flushes before exiting; run() raises it on any error.
type exitCode int

func benchMain(ctx context.Context) (code int) {
	table := flag.Int("table", 0, "regenerate paper table 1-5")
	figure := flag.Int("figure", 0, "regenerate paper figure 1-2")
	ext := flag.String("ext", "", "extension experiment: rim, energy, drift, profiler, nasx, amplify, model or all")
	all := flag.Bool("all", false, "regenerate every table and figure")
	quick := flag.Bool("quick", false, "reduced grids (smoke-test scale)")
	runs := flag.Int("runs", 0, "runs per cell (0 = paper defaults)")
	seed := flag.Int64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit raw CSV instead of rendered output (figures)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of rendered output")
	compare := flag.Int("compare", 0, "regenerate table 1-3 and diff against the paper's published values")
	parallel := flag.Int("parallel", 1, "sweep cells run concurrently (1 = sequential, 0 = all CPUs)")
	benchJSON := flag.String("benchjson", "", "write the sweep perf baseline (quick scale) as JSON to this file")
	traceOut := flag.String("trace", "", "stream a Chrome trace-event timeline of every sweep cell to this file")
	metricsOut := flag.String("metrics", "", "write the aggregated metrics snapshot as JSON to this file")
	manifestOut := flag.String("manifest", "", "write a reproducibility manifest (flags + versions) as JSON to this file")
	storeDir := flag.String("store", "", "checkpoint every finished sweep cell in this content-addressed result store directory")
	resume := flag.Bool("resume", false, "replay cells the -store already holds instead of re-running them")
	cellTimeout := flag.Duration("cell-timeout", 0, "wall-clock deadline per sweep cell (0 = none); timed-out cells fail, they are not retried")
	retries := flag.Int("retries", 0, "re-run transiently-failed cells up to this many times with exponential backoff")
	fastpath := flag.String("fastpath", "off", "analytic fast-path dispatch: off, auto (byte-identical) or model (approximate)")
	shards := flag.Int("shards", 1, "per-cell engine shards (1 = sequential; any value is bit-identical)")
	flag.Parse()

	// The recover must be registered before the sink-flush defers below
	// so that flushes run first while an exitCode panic unwinds.
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(c)
		}
	}()
	run := func(err error) {
		if err == nil {
			return
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "smibench: interrupted")
			panic(exitCode(130))
		}
		fmt.Fprintln(os.Stderr, "smibench:", err)
		panic(exitCode(1))
	}

	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "smibench: -resume requires -store")
		return 2
	}
	workers := *parallel
	if workers < 1 {
		workers = parsweep.Workers(0)
	}
	fpMode, err := runner.ParseFastPathMode(*fastpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smibench:", err)
		return 2
	}
	cfg := experiments.Config{
		Quick: *quick, Runs: *runs, Seed: *seed, Workers: workers,
		Ctx: ctx, Resume: *resume, CellTimeout: *cellTimeout, Retries: *retries,
		Stats: &runner.ExecStats{}, Shards: *shards,
	}
	if fpMode != runner.FastOff {
		cfg.Dispatch = runner.NewDispatcher(fpMode, 0)
	}
	if *storeDir != "" {
		s, err := durable.Open(*storeDir)
		run(err)
		defer s.Close()
		cfg.Store = s
	}

	if *manifestOut != "" {
		m := obs.Capture("smibench", flag.CommandLine, "trace", "metrics", "manifest", "store", "resume")
		data, err := m.JSON()
		run(err)
		run(os.WriteFile(*manifestOut, data, 0o644))
		// Rewritten after the run (even an interrupted one) with the
		// fast-path dispatcher's accounting attached, so the manifest
		// documents exactly which cells were served without simulation.
		// Best-effort: the rewrite may run while an error unwinds.
		defer func() {
			m.FastPath = cfg.Dispatch.Stats()
			if data, err := m.JSON(); err == nil {
				_ = os.WriteFile(*manifestOut, data, 0o644)
			}
		}()
	}
	// One bus spans every sweep requested on this invocation; per-run
	// stamping keeps parallel cells separable in the timeline.
	var sink *obs.ChromeSink
	var traceFile *os.File
	if *traceOut != "" || *metricsOut != "" {
		bus := obs.NewBus()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			run(err)
			traceFile = f
			sink = obs.NewChromeSink(f)
			bus.Attach(sink)
		}
		cfg.Tracer = bus
		defer func() {
			if sink != nil {
				run(sink.Close())
				run(traceFile.Close())
			}
			if *metricsOut != "" {
				data, err := bus.MetricsSnapshot().JSON()
				run(err)
				run(os.WriteFile(*metricsOut, data, 0o644))
			}
		}()
	}

	if !*all && *table == 0 && *figure == 0 && *ext == "" && *compare == 0 && *benchJSON == "" {
		flag.Usage()
		return 2
	}

	if *benchJSON != "" {
		sets := []int{1}
		if workers > 1 {
			sets = append(sets, workers)
		} else if n := parsweep.Workers(0); n > 1 {
			sets = append(sets, n)
		}
		rep, err := experiments.BenchSweeps(cfg, sets)
		run(err)
		out, err := rep.ToJSON()
		run(err)
		run(os.MkdirAll(filepath.Dir(*benchJSON), 0o755))
		run(os.WriteFile(*benchJSON, []byte(out), 0o644))
		fmt.Printf("wrote %s (%d sweep timings, engine event %.1f ns / %.2f allocs)\n",
			*benchJSON, len(rep.Sweeps), rep.EngineEventNS, rep.EngineEventAllocs)
		if *table == 0 && *figure == 0 && *ext == "" && *compare == 0 && !*all {
			return
		}
	}
	emit := func(v interface{ Render() string }) {
		if *jsonOut {
			out, err := experiments.ToJSON(v)
			run(err)
			fmt.Println(out)
			return
		}
		fmt.Println(v.Render())
	}

	tables := map[int]bool{}
	figures := map[int]bool{}
	if *all {
		for i := 1; i <= 5; i++ {
			tables[i] = true
		}
		figures[1] = true
		figures[2] = true
	}
	if *table != 0 {
		tables[*table] = true
	}
	if *figure != 0 {
		figures[*figure] = true
	}

	for i := 1; i <= 5; i++ {
		if !tables[i] {
			continue
		}
		switch i {
		case 1:
			t, err := experiments.Table1(cfg)
			run(err)
			emit(t)
		case 2:
			t, err := experiments.Table2(cfg)
			run(err)
			emit(t)
		case 3:
			t, err := experiments.Table3(cfg)
			run(err)
			emit(t)
		case 4:
			t, err := experiments.Table4(cfg)
			run(err)
			emit(t)
		case 5:
			t, err := experiments.Table5(cfg)
			run(err)
			emit(t)
		default:
			run(fmt.Errorf("no table %d in the paper", i))
		}
	}
	if tables[0] || *table > 5 || *table < 0 {
		run(fmt.Errorf("no table %d in the paper", *table))
	}

	if figures[1] {
		f, err := experiments.Figure1Convolve(cfg)
		run(err)
		if *jsonOut {
			out, err := experiments.ToJSON(f)
			run(err)
			fmt.Println(out)
		} else if *csv {
			fmt.Print(f.CSV())
		} else {
			fmt.Println(f.Left(smistudy.CacheUnfriendly))
			fmt.Println(f.Right(smistudy.CacheUnfriendly))
			fmt.Println(f.Left(smistudy.CacheFriendly))
			fmt.Println(f.Right(smistudy.CacheFriendly))
		}
	}
	if figures[2] {
		f, err := experiments.Figure2UnixBench(cfg)
		run(err)
		switch {
		case *jsonOut:
			out, err := experiments.ToJSON(f)
			run(err)
			fmt.Println(out)
		case *csv:
			fmt.Print(f.CSV())
		default:
			fmt.Println(f.Render())
		}
	}
	if *figure > 2 || *figure < 0 {
		run(fmt.Errorf("no figure %d in the paper", *figure))
	}

	if *compare != 0 {
		out, err := experiments.Compare(cfg, *compare)
		run(err)
		fmt.Println(out)
	}

	exts := map[string]func(experiments.Config) (string, error){
		"rim":      experiments.RIMTradeoff,
		"energy":   experiments.EnergyStudy,
		"drift":    experiments.DriftStudy,
		"profiler": experiments.ProfilerStudy,
		"nasx":     experiments.ExtendedNAS,
		"amplify":  experiments.AmplificationStudy,
		"model":    experiments.ModelStudy,
		"faults":   experiments.FaultStudy,
	}
	switch *ext {
	case "":
	case "all":
		for _, name := range []string{"rim", "energy", "drift", "profiler", "nasx", "amplify", "model", "faults"} {
			out, err := exts[name](cfg)
			run(err)
			fmt.Println(out)
		}
	default:
		fn, ok := exts[*ext]
		if !ok {
			run(fmt.Errorf("unknown extension %q (want rim, energy, drift, profiler, nasx, amplify, model, faults or all)", *ext))
		}
		out, err := fn(cfg)
		run(err)
		fmt.Println(out)
	}
	return 0
}
