package main

import (
	"testing"

	"smistudy"
)

func TestParseBench(t *testing.T) {
	for _, s := range []string{"EP", "BT", "FT"} {
		b, err := parseBench(s)
		if err != nil || string(b) != s {
			t.Fatalf("parseBench(%q) = %v, %v", s, b, err)
		}
	}
	for _, s := range []string{"", "ep", "CG", "EP "} {
		if _, err := parseBench(s); err == nil {
			t.Fatalf("parseBench(%q) accepted", s)
		}
	}
}

func TestParseClass(t *testing.T) {
	for _, s := range []string{"S", "A", "B", "C"} {
		c, err := parseClass(s)
		if err != nil || byte(c) != s[0] {
			t.Fatalf("parseClass(%q) = %v, %v", s, c, err)
		}
	}
	// The empty string used to panic via (*class)[0]; "AB" used to
	// silently truncate to class A.
	for _, s := range []string{"", "AB", "a", "D"} {
		if _, err := parseClass(s); err == nil {
			t.Fatalf("parseClass(%q) accepted", s)
		}
	}
}

func TestParseCache(t *testing.T) {
	if b, err := parseCache("friendly"); err != nil || b != smistudy.CacheFriendly {
		t.Fatalf("friendly: %v, %v", b, err)
	}
	if b, err := parseCache("unfriendly"); err != nil || b != smistudy.CacheUnfriendly {
		t.Fatalf("unfriendly: %v, %v", b, err)
	}
	// Anything else used to silently mean "friendly".
	for _, s := range []string{"", "Unfriendly", "hostile"} {
		if _, err := parseCache(s); err == nil {
			t.Fatalf("parseCache(%q) accepted", s)
		}
	}
}

func TestParseSMM(t *testing.T) {
	want := []smistudy.SMMLevel{smistudy.SMM0, smistudy.SMM1, smistudy.SMM2}
	for i, w := range want {
		lv, err := parseSMM(i)
		if err != nil || lv != w {
			t.Fatalf("parseSMM(%d) = %v, %v", i, lv, err)
		}
	}
	for _, n := range []int{-1, 3, 99} {
		if _, err := parseSMM(n); err == nil {
			t.Fatalf("parseSMM(%d) accepted", n)
		}
	}
}
