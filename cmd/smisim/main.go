// Command smisim runs a single simulated experiment configuration — one
// cell of the study — and prints its result. It is the ad-hoc driver for
// exploring configurations the paper did not tabulate.
//
// Usage:
//
//	smisim -workload nas -bench FT -class B -nodes 8 -rpn 4 -smm 2 -htt
//	smisim -workload nas -bench EP -class A -nodes 4 -loss 0.01
//	smisim -workload nas -bench EP -class A -nodes 4 -crash-node 1 -crash-at 5
//	smisim -workload convolve -cache unfriendly -cpus 6 -interval 150
//	smisim -workload unixbench -cpus 8 -interval 600
//
// The -loss/-crash-*/-hang-*/-storm-* flags inject fabric and node
// faults into NAS runs; lossy scenarios automatically enable the MPI
// ack/retransmit transport.
//
// Scenario files:
//
//	smisim -scenario examples/scenarios/table1-bt-a.json
//	smisim -list-workloads
//
// A scenario file is the declarative twin of the flag surface
// (internal/scenario): the same cell, measured byte-for-byte
// identically, but serializable, diffable and reachable for every
// registered workload — including the ones the flag surface does not
// cover (rim, energy, drift, profiler). Flags that describe the cell
// cannot be combined with -scenario; execution flags (-parallel,
// -trace, -metrics, -manifest, -replay) still apply.
//
// Observability:
//
//	smisim ... -trace run.json          # Chrome/Perfetto timeline
//	smisim ... -metrics metrics.json    # counters and histograms
//	smisim ... -manifest manifest.json  # reproducibility manifest
//	smisim -replay manifest.json        # re-run exactly that cell
//
// Durability:
//
//	smisim -scenario cell.json -store results/store          # checkpoint cells
//	smisim -scenario cell.json -store results/store -resume  # replay + finish
//	smisim ... -cell-timeout 5m -retries 3                   # per-cell limits
//
// With -store every finished repetition is checkpointed in a
// content-addressed store keyed by the cell's canonical spec, so a run
// killed at any instant — Ctrl-C, OOM, kill -9 — resumes with -resume
// from exactly the repetitions it completed and reproduces the
// uninterrupted output byte-for-byte. SIGINT cancels cleanly: sinks
// are flushed, the manifest records how far the sweep got, and the
// exit code is 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"smistudy/internal/durable"
	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// cellFlags are the flags that describe the measured cell itself; they
// are the legacy spelling of a scenario file, so combining them with
// -scenario would make the file an incomplete description of the run.
// Execution and output flags (parallel, trace, metrics, manifest,
// replay) stay valid either way.
var cellFlags = map[string]bool{
	"workload": true, "bench": true, "class": true, "nodes": true,
	"rpn": true, "htt": true, "smm": true, "cache": true, "cpus": true,
	"interval": true, "runs": true, "seed": true, "loss": true,
	"crash-node": true, "crash-at": true, "hang-node": true,
	"hang-at": true, "hang-for": true, "storm-node": true,
	"storm-at": true, "storm-for": true, "watchdog": true,
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "nas", "nas, convolve or unixbench")
	bench := fs.String("bench", "EP", "NAS benchmark: EP, BT, FT")
	class := fs.String("class", "A", "NAS class: S, A, B, C")
	nodes := fs.Int("nodes", 1, "cluster nodes")
	rpn := fs.Int("rpn", 1, "MPI ranks per node")
	htt := fs.Bool("htt", false, "enable hyper-threading")
	smmLevel := fs.Int("smm", 0, "SMM level: 0 none, 1 short, 2 long")
	cacheB := fs.String("cache", "friendly", "convolve cache behavior: friendly, unfriendly")
	cpus := fs.Int("cpus", 4, "online logical CPUs (convolve/unixbench)")
	interval := fs.Int("interval", 0, "SMI interval ms (convolve/unixbench; 0 = off)")
	runs := fs.Int("runs", 1, "runs to average")
	seed := fs.Int64("seed", 1, "random seed")
	loss := fs.Float64("loss", 0, "nas: uniform message-loss probability (0-1)")
	crashNode := fs.Int("crash-node", 0, "nas: node to crash when -crash-at > 0")
	crashAt := fs.Float64("crash-at", 0, "nas: crash time in seconds (0 = no crash)")
	hangNode := fs.Int("hang-node", 0, "nas: node to hang when -hang-at > 0")
	hangAt := fs.Float64("hang-at", 0, "nas: hang time in seconds (0 = no hang)")
	hangFor := fs.Float64("hang-for", 0, "nas: hang duration in seconds (0 = forever)")
	stormNode := fs.Int("storm-node", 0, "nas: node for an SMI storm when -storm-at > 0")
	stormAt := fs.Float64("storm-at", 0, "nas: SMI-storm start in seconds (0 = no storm)")
	stormFor := fs.Float64("storm-for", 0, "nas: SMI-storm duration in seconds (0 = to end of run)")
	watchdog := fs.Float64("watchdog", 0, "nas: progress-watchdog interval in seconds (0 = default, <0 = off)")
	parallel := fs.Int("parallel", 1, "repeat runs concurrently (1 = sequential, 0 = all CPUs); output is identical either way")
	traceOut := fs.String("trace", "", "stream a Chrome trace-event timeline (chrome://tracing, Perfetto) to this file")
	metricsOut := fs.String("metrics", "", "write the run's metrics snapshot as JSON to this file")
	manifestOut := fs.String("manifest", "", "write a reproducibility manifest (flags + versions) as JSON to this file")
	replay := fs.String("replay", "", "re-run from a manifest file; flags given on the command line still win")
	storeDir := fs.String("store", "", "checkpoint every finished repetition in this content-addressed result store directory")
	resume := fs.Bool("resume", false, "replay repetitions the -store already holds instead of re-running them")
	cellTimeout := fs.Duration("cell-timeout", 0, "wall-clock deadline per repetition cell (0 = none); timed-out cells fail, they are not retried")
	retries := fs.Int("retries", 0, "re-run transiently-failed cells up to this many times with exponential backoff")
	scenarioFile := fs.String("scenario", "", "run a declarative scenario file (JSON) instead of the cell flags")
	fastpath := fs.String("fastpath", "off", "analytic fast-path dispatch: off, auto (byte-identical) or model (approximate)")
	shards := fs.Int("shards", 1, "per-cell engine shards (1 = sequential; any value is bit-identical)")
	listWorkloads := fs.Bool("list-workloads", false, "list the registered workloads and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "smisim:", err)
		return 1
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "smisim:", err)
		return 2
	}

	if *listWorkloads {
		for _, name := range runner.Names() {
			w, _ := runner.Lookup(name)
			fmt.Fprintf(stdout, "%-10s %s\n", name, w.Summary)
		}
		return 0
	}

	// Record what the command line itself set before -replay rewrites the
	// flag set programmatically: the conflict check below and the replay
	// precedence rule ("explicit flags win") both need the original set.
	explicit := obs.ExplicitFlags(fs)
	if *scenarioFile != "" {
		for name := range explicit {
			if cellFlags[name] {
				return usage(fmt.Errorf("-%s cannot be combined with -scenario (the file is the complete cell description)", name))
			}
		}
	}

	if *replay != "" {
		m, err := obs.LoadManifestFile(*replay)
		if err != nil {
			return fail(err)
		}
		if err := m.Apply(fs, explicit); err != nil {
			return fail(err)
		}
	}

	// Build the cell spec — from the scenario file, or by lowering the
	// legacy flag surface onto the same declarative form — and validate
	// it up front, after -replay may have rewritten the flags and before
	// any output file is created, so operator typos exit 2 instead of
	// panicking or silently meaning a default.
	var spec scenario.Spec
	if *scenarioFile != "" {
		sp, err := scenario.Load(*scenarioFile)
		if err != nil {
			return usage(err)
		}
		spec = sp
	} else {
		switch *workload {
		case "nas":
			if _, err := parseBench(*bench); err != nil {
				return usage(err)
			}
			if _, err := parseClass(*class); err != nil {
				return usage(err)
			}
			if _, err := parseSMM(*smmLevel); err != nil {
				return usage(err)
			}
			spec = scenario.Spec{
				Workload: "nas",
				Machine:  scenario.Machine{Nodes: *nodes, RanksPerNode: *rpn, HTT: *htt},
				SMM:      scenario.SMMPlan{Level: []string{"none", "short", "long"}[*smmLevel]},
				Runs:     *runs, Seed: *seed, WatchdogS: *watchdog,
				Params: scenario.Params{Bench: *bench, Class: *class},
			}
			plan := scenario.FaultPlan{
				LossProb:  *loss,
				CrashNode: *crashNode, CrashAtS: *crashAt,
				HangNode: *hangNode, HangAtS: *hangAt, HangForS: *hangFor,
				StormNode: *stormNode, StormAtS: *stormAt, StormForS: *stormFor,
			}
			if plan.Active() {
				spec.Faults = &plan
			}
		case "convolve":
			if _, err := parseCache(*cacheB); err != nil {
				return usage(err)
			}
			spec = scenario.Spec{
				Workload: "convolve",
				Machine:  scenario.Machine{CPUs: *cpus},
				SMM:      scenario.SMMPlan{IntervalMS: *interval},
				Runs:     *runs, Seed: *seed,
				Params: scenario.Params{Cache: *cacheB},
			}
		case "unixbench":
			// An iteration is a single 2 s-per-test run at long SMIs, as
			// the legacy surface always ran it; -runs is not a knob here.
			spec = scenario.Spec{
				Workload: "unixbench",
				Machine:  scenario.Machine{CPUs: *cpus},
				SMM:      scenario.SMMPlan{Level: "long", IntervalMS: *interval},
				Seed:     *seed,
				Params:   scenario.Params{DurationS: 2},
			}
		default:
			return usage(fmt.Errorf("unknown -workload %q (want nas, convolve or unixbench; -scenario reaches every registered workload)", *workload))
		}
	}
	if err := runner.Validate(spec); err != nil {
		return usage(err)
	}
	// Reject malformed fault plans up front: a bad fault flag or field is
	// an operator error, not a fault-scenario outcome.
	if spec.Workload == "nas" {
		if plan := runner.LowerFaults(spec.Faults); plan != nil {
			if err := plan.Schedule().Validate(specNodes(spec)); err != nil {
				return fail(err)
			}
		}
	}

	// The manifest is written before the run (so a killed run still has
	// one) and rewritten afterwards with the durable sweep's accounting.
	// Store flags are excluded: the store is a local cache location, not
	// part of what the run measures.
	manifest := obs.Capture("smisim", fs, "trace", "metrics", "manifest", "replay", "store", "resume")
	// Echo the canonical spec: the manifest then carries the cell's
	// content-address identity, which is what smireport and the durable
	// store key on.
	if data, err := spec.JSON(); err == nil {
		manifest.Scenario = data
	}
	writeManifest := func() int {
		if *manifestOut == "" {
			return 0
		}
		data, err := manifest.JSON()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*manifestOut, data, 0o644); err != nil {
			return fail(err)
		}
		return 0
	}
	if code := writeManifest(); code != 0 {
		return code
	}

	workers := *parallel
	if workers < 1 {
		workers = parsweep.Workers(0)
	}

	// Output destinations: explicit flags win, then the scenario file's
	// obs section, then none.
	traceDest := *traceOut
	if traceDest == "" {
		traceDest = spec.Obs.Trace
	}
	metricsDest := *metricsOut
	if metricsDest == "" {
		metricsDest = spec.Obs.Metrics
	}

	// The bus is shared by all runs of the cell; each run's events are
	// stamped with its run index, so -parallel does not scramble the
	// trace. Outputs are written when the measured workload returns —
	// including when a fault scenario kills the job, which is exactly
	// when a timeline is most useful.
	var bus *obs.Bus
	var sink *obs.ChromeSink
	var traceFile *os.File
	if traceDest != "" || metricsDest != "" {
		bus = obs.NewBus()
		if traceDest != "" {
			f, err := os.Create(traceDest)
			if err != nil {
				return fail(err)
			}
			traceFile = f
			sink = obs.NewChromeSink(f)
			bus.Attach(sink)
		}
	}
	finish := func() error {
		if sink != nil {
			cerr := sink.Close()
			// Sink accounting lands in the manifest even when the writer
			// errored — especially then: a lossy trace that looks complete
			// is the failure mode smireport's warnings exist to catch.
			st := &obs.SinkStats{TraceEvents: sink.Events()}
			if werr := sink.Err(); werr != nil {
				st.TraceError = werr.Error()
			}
			manifest.Obs = st
			if cerr != nil {
				return cerr
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  trace  → %s\n", traceDest)
		}
		if metricsDest != "" {
			data, err := bus.MetricsSnapshot().JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(metricsDest, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  metrics → %s\n", metricsDest)
		}
		return nil
	}

	fpMode, err := runner.ParseFastPathMode(*fastpath)
	if err != nil {
		return usage(err)
	}
	dopts := durable.Options{
		Workers:     workers,
		CellTimeout: *cellTimeout,
		Retry:       durable.Policy{MaxRetries: *retries},
		Shards:      *shards,
	}
	if fpMode != runner.FastOff {
		dopts.Dispatch = runner.NewDispatcher(fpMode, 0)
	}
	if bus != nil {
		dopts.Tracer = bus // keep the interface nil when no bus was built
	}
	if *resume && *storeDir == "" {
		return usage(fmt.Errorf("-resume needs a -store to resume from"))
	}
	if *storeDir != "" {
		s, err := durable.Open(*storeDir)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		dopts.Store = s
		dopts.Resume = *resume
	}

	m, st, err := durable.RunSpec(ctx, spec, dopts)
	manifest.Durable = st
	manifest.FastPath = dopts.Dispatch.Stats()
	if dopts.Store != nil {
		fmt.Fprintf(stderr, "durable: %d cells, %d cached, %d executed, %d failed\n",
			st.Cells, st.Cached, st.Executed, st.Failed)
	}
	if err != nil && errors.Is(err, context.Canceled) && ctx.Err() != nil {
		// Interrupted: flush what the run produced so far — the partial
		// trace, the manifest with the sweep's progress — and exit 130
		// like a conventionally killed process.
		fmt.Fprintln(stderr, "smisim: interrupted")
		if ferr := finish(); ferr != nil {
			return fail(ferr)
		}
		writeManifest()
		return 130
	}
	if code := writeManifest(); code != 0 {
		return code
	}
	if err != nil && spec.Workload == "nas" && spec.Faults.Active() {
		// A fault scenario that kills the job is a result, not a tool
		// failure: report the attributed error and the recovery work that
		// preceded it.
		fmt.Fprintf(stdout, "%s.%s  nodes=%d rpn=%d: job failed under faults\n",
			spec.Params.Bench, spec.Params.Class, specNodes(spec), specRPN(spec))
		fmt.Fprintf(stdout, "  error       = %v\n", err)
		if m.NAS != nil {
			fmt.Fprintf(stdout, "  drops       = %d\n", m.NAS.Dropped)
			fmt.Fprintf(stdout, "  retransmits = %d\n", m.NAS.Retransmits)
		}
		ferr := finish()
		writeManifest()
		if ferr != nil {
			return fail(ferr)
		}
		return 0
	}
	if err != nil {
		return fail(err)
	}
	if err := printMeasurement(stdout, spec, m); err != nil {
		return fail(err)
	}
	ferr := finish()
	// The final manifest write carries the sink accounting finish just
	// recorded; a write failure there still leaves the pre-run manifest.
	writeManifest()
	if ferr != nil {
		return fail(ferr)
	}
	return 0
}

// specNodes is the spec's node count after the runner's default.
func specNodes(sp scenario.Spec) int {
	if sp.Machine.Nodes == 0 {
		return 1
	}
	return sp.Machine.Nodes
}

// specRPN is the spec's ranks-per-node after the runner's default.
func specRPN(sp scenario.Spec) int {
	if sp.Machine.RanksPerNode == 0 {
		return 1
	}
	return sp.Machine.RanksPerNode
}

// printMeasurement renders one measurement in the cell's report layout;
// workloads without a bespoke layout print their canonical JSON.
func printMeasurement(w io.Writer, spec scenario.Spec, m runner.Measurement) error {
	switch {
	case m.NAS != nil:
		res := m.NAS
		fmt.Fprintf(w, "%s.%s  ranks=%d nodes=%d rpn=%d htt=%v smm=%v\n",
			spec.Params.Bench, spec.Params.Class, res.Ranks,
			specNodes(spec), specRPN(spec), spec.Machine.HTT, res.Options.SMM)
		fmt.Fprintf(w, "  time   = %.2fs (mean of %d)\n", res.Seconds(), len(res.Times))
		fmt.Fprintf(w, "  mops   = %.1f\n", res.MOPs)
		fmt.Fprintf(w, "  smm    = %v mean per-node residency\n", res.Residency)
		fmt.Fprintf(w, "  verify = %v\n", res.Verified)
		if spec.Faults.Active() {
			fmt.Fprintf(w, "  faults = %d drops, %d retransmits, %d duplicates\n",
				res.Dropped, res.Retransmits, res.Duplicates)
		}
	case m.Convolve != nil:
		res := m.Convolve
		fmt.Fprintf(w, "convolve %v  cpus=%d interval=%dms threads=%d\n",
			res.Options.Behavior, res.Options.CPUs, res.Options.SMIIntervalMS, res.Threads)
		fmt.Fprintf(w, "  time = %.3fs ± %.3fs (mean of %d)\n",
			res.MeanTime.Seconds(), res.StdDev.Seconds(), len(res.Times))
	case m.UnixBench != nil:
		res := m.UnixBench
		fmt.Fprintf(w, "unixbench  cpus=%d interval=%dms\n",
			res.Options.CPUs, res.Options.SMIIntervalMS)
		for _, ts := range res.Tests {
			fmt.Fprintf(w, "  %-30s single %12.1f %-6s multi(%d) %12.1f\n",
				ts.Name, ts.SingleRate, ts.Unit, ts.MultiCopies, ts.MultiRate)
		}
		fmt.Fprintf(w, "  total index score: %.1f\n", res.Score)
	default:
		data, err := m.JSON()
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	return nil
}
