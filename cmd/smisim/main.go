// Command smisim runs a single simulated experiment configuration — one
// cell of the study — and prints its result. It is the ad-hoc driver for
// exploring configurations the paper did not tabulate.
//
// Usage:
//
//	smisim -workload nas -bench FT -class B -nodes 8 -rpn 4 -smm 2 -htt
//	smisim -workload nas -bench EP -class A -nodes 4 -loss 0.01
//	smisim -workload nas -bench EP -class A -nodes 4 -crash-node 1 -crash-at 5
//	smisim -workload convolve -cache unfriendly -cpus 6 -interval 150
//	smisim -workload unixbench -cpus 8 -interval 600
//
// The -loss/-crash-*/-hang-*/-storm-* flags inject fabric and node
// faults into NAS runs; lossy scenarios automatically enable the MPI
// ack/retransmit transport.
//
// Observability:
//
//	smisim ... -trace run.json          # Chrome/Perfetto timeline
//	smisim ... -metrics metrics.json    # counters and histograms
//	smisim ... -manifest manifest.json  # reproducibility manifest
//	smisim -replay manifest.json        # re-run exactly that cell
package main

import (
	"flag"
	"fmt"
	"os"

	"smistudy"
	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/sim"
)

func main() {
	workload := flag.String("workload", "nas", "nas, convolve or unixbench")
	bench := flag.String("bench", "EP", "NAS benchmark: EP, BT, FT")
	class := flag.String("class", "A", "NAS class: S, A, B, C")
	nodes := flag.Int("nodes", 1, "cluster nodes")
	rpn := flag.Int("rpn", 1, "MPI ranks per node")
	htt := flag.Bool("htt", false, "enable hyper-threading")
	smmLevel := flag.Int("smm", 0, "SMM level: 0 none, 1 short, 2 long")
	cacheB := flag.String("cache", "friendly", "convolve cache behavior: friendly, unfriendly")
	cpus := flag.Int("cpus", 4, "online logical CPUs (convolve/unixbench)")
	interval := flag.Int("interval", 0, "SMI interval ms (convolve/unixbench; 0 = off)")
	runs := flag.Int("runs", 1, "runs to average")
	seed := flag.Int64("seed", 1, "random seed")
	loss := flag.Float64("loss", 0, "nas: uniform message-loss probability (0-1)")
	crashNode := flag.Int("crash-node", 0, "nas: node to crash when -crash-at > 0")
	crashAt := flag.Float64("crash-at", 0, "nas: crash time in seconds (0 = no crash)")
	hangNode := flag.Int("hang-node", 0, "nas: node to hang when -hang-at > 0")
	hangAt := flag.Float64("hang-at", 0, "nas: hang time in seconds (0 = no hang)")
	hangFor := flag.Float64("hang-for", 0, "nas: hang duration in seconds (0 = forever)")
	stormNode := flag.Int("storm-node", 0, "nas: node for an SMI storm when -storm-at > 0")
	stormAt := flag.Float64("storm-at", 0, "nas: SMI-storm start in seconds (0 = no storm)")
	stormFor := flag.Float64("storm-for", 0, "nas: SMI-storm duration in seconds (0 = to end of run)")
	watchdog := flag.Float64("watchdog", 0, "nas: progress-watchdog interval in seconds (0 = default, <0 = off)")
	parallel := flag.Int("parallel", 1, "repeat runs concurrently (1 = sequential, 0 = all CPUs); output is identical either way")
	traceOut := flag.String("trace", "", "stream a Chrome trace-event timeline (chrome://tracing, Perfetto) to this file")
	metricsOut := flag.String("metrics", "", "write the run's metrics snapshot as JSON to this file")
	manifestOut := flag.String("manifest", "", "write a reproducibility manifest (flags + versions) as JSON to this file")
	replay := flag.String("replay", "", "re-run from a manifest file; flags given on the command line still win")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "smisim:", err)
			os.Exit(1)
		}
	}
	usage := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "smisim:", err)
			os.Exit(2)
		}
	}

	if *replay != "" {
		m, err := obs.LoadManifestFile(*replay)
		fail(err)
		fail(m.Apply(flag.CommandLine, obs.ExplicitFlags(flag.CommandLine)))
	}

	// Validate the flag surface up front — after -replay may have
	// rewritten it, before any output file is created — so operator
	// typos exit 2 instead of panicking or silently meaning a default.
	var (
		nasBench smistudy.Benchmark
		nasClass smistudy.Class
		nasSMM   smistudy.SMMLevel
		cacheBeh smistudy.CacheBehavior
	)
	switch *workload {
	case "nas":
		var err error
		if nasBench, err = parseBench(*bench); err != nil {
			usage(err)
		}
		if nasClass, err = parseClass(*class); err != nil {
			usage(err)
		}
		if nasSMM, err = parseSMM(*smmLevel); err != nil {
			usage(err)
		}
	case "convolve":
		var err error
		if cacheBeh, err = parseCache(*cacheB); err != nil {
			usage(err)
		}
	case "unixbench":
	default:
		usage(fmt.Errorf("unknown -workload %q (want nas, convolve or unixbench)", *workload))
	}
	if *manifestOut != "" {
		m := obs.Capture("smisim", flag.CommandLine, "trace", "metrics", "manifest", "replay")
		data, err := m.JSON()
		fail(err)
		fail(os.WriteFile(*manifestOut, data, 0o644))
	}

	workers := *parallel
	if workers < 1 {
		workers = parsweep.Workers(0)
	}

	// The bus is shared by all runs of the cell; each run's events are
	// stamped with its run index, so -parallel does not scramble the
	// trace. Outputs are written when the measured workload returns —
	// including when a fault scenario kills the job, which is exactly
	// when a timeline is most useful.
	var bus *obs.Bus
	var sink *obs.ChromeSink
	var traceFile *os.File
	if *traceOut != "" || *metricsOut != "" {
		bus = obs.NewBus()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fail(err)
			traceFile = f
			sink = obs.NewChromeSink(f)
			bus.Attach(sink)
		}
	}
	finish := func() {
		if sink != nil {
			fail(sink.Close())
			fail(traceFile.Close())
			fmt.Printf("  trace  → %s\n", *traceOut)
		}
		if *metricsOut != "" {
			data, err := bus.MetricsSnapshot().JSON()
			fail(err)
			fail(os.WriteFile(*metricsOut, data, 0o644))
			fmt.Printf("  metrics → %s\n", *metricsOut)
		}
	}
	defer finish()
	var tracer smistudy.Tracer
	if bus != nil {
		tracer = bus // keep the interface nil when no bus was built
	}

	switch *workload {
	case "nas":
		plan := smistudy.FaultPlan{
			LossProb:  *loss,
			CrashNode: *crashNode, CrashAt: sim.FromSeconds(*crashAt),
			HangNode: *hangNode, HangAt: sim.FromSeconds(*hangAt), HangFor: sim.FromSeconds(*hangFor),
			StormNode: *stormNode, StormAt: sim.FromSeconds(*stormAt), StormFor: sim.FromSeconds(*stormFor),
		}
		opts := smistudy.NASOptions{
			Bench:        nasBench,
			Class:        nasClass,
			Nodes:        *nodes,
			RanksPerNode: *rpn,
			HTT:          *htt,
			SMM:          nasSMM,
			Runs:         *runs,
			Seed:         *seed,
			Watchdog:     sim.FromSeconds(*watchdog),
			Workers:      workers,
			Tracer:       tracer,
		}
		if plan.Active() {
			// Reject malformed fault flags up front: a bad flag value is
			// an operator error, not a fault-scenario outcome.
			fail(plan.Schedule().Validate(*nodes))
			opts.Faults = &plan
		}
		res, err := smistudy.RunNAS(opts)
		if err != nil && opts.Faults != nil {
			// A fault scenario that kills the job is a result, not a
			// tool failure: report the attributed error and the recovery
			// work that preceded it.
			fmt.Printf("%s.%s  nodes=%d rpn=%d: job failed under faults\n",
				*bench, *class, *nodes, *rpn)
			fmt.Printf("  error       = %v\n", err)
			fmt.Printf("  drops       = %d\n", res.Dropped)
			fmt.Printf("  retransmits = %d\n", res.Retransmits)
			return
		}
		fail(err)
		fmt.Printf("%s.%s  ranks=%d nodes=%d rpn=%d htt=%v smm=%v\n",
			*bench, *class, res.Ranks, *nodes, *rpn, *htt, nasSMM)
		fmt.Printf("  time   = %.2fs (mean of %d)\n", res.Seconds(), len(res.Times))
		fmt.Printf("  mops   = %.1f\n", res.MOPs)
		fmt.Printf("  smm    = %v mean per-node residency\n", res.Residency)
		fmt.Printf("  verify = %v\n", res.Verified)
		if opts.Faults != nil {
			fmt.Printf("  faults = %d drops, %d retransmits, %d duplicates\n",
				res.Dropped, res.Retransmits, res.Duplicates)
		}

	case "convolve":
		beh := cacheBeh
		res, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
			Behavior: beh, CPUs: *cpus, SMIIntervalMS: *interval,
			Runs: *runs, Seed: *seed, Workers: workers, Tracer: tracer,
		})
		fail(err)
		fmt.Printf("convolve %v  cpus=%d interval=%dms threads=%d\n", beh, *cpus, *interval, res.Threads)
		fmt.Printf("  time = %.3fs ± %.3fs (mean of %d)\n",
			res.MeanTime.Seconds(), res.StdDev.Seconds(), len(res.Times))

	case "unixbench":
		res, err := smistudy.RunUnixBench(smistudy.UnixBenchOptions{
			CPUs: *cpus, SMIIntervalMS: *interval, Level: smistudy.SMM2,
			Seed: *seed, Duration: 2 * sim.Second, Tracer: tracer,
		})
		fail(err)
		fmt.Printf("unixbench  cpus=%d interval=%dms\n", *cpus, *interval)
		for _, ts := range res.Tests {
			fmt.Printf("  %-30s single %12.1f %-6s multi(%d) %12.1f\n",
				ts.Name, ts.SingleRate, ts.Unit, ts.MultiCopies, ts.MultiRate)
		}
		fmt.Printf("  total index score: %.1f\n", res.Score)

	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
}
