package main

import (
	"fmt"

	"smistudy"
)

// parseBench validates the -bench flag against the three NAS kernels
// the study models.
func parseBench(s string) (smistudy.Benchmark, error) {
	switch b := smistudy.Benchmark(s); b {
	case smistudy.EP, smistudy.BT, smistudy.FT:
		return b, nil
	}
	return "", fmt.Errorf("unknown -bench %q (want EP, BT or FT)", s)
}

// parseClass validates the -class flag. Indexing the raw string would
// panic on -class "" and silently accept "AB" as class A.
func parseClass(s string) (smistudy.Class, error) {
	if len(s) == 1 {
		switch c := smistudy.Class(s[0]); c {
		case smistudy.ClassS, smistudy.ClassA, smistudy.ClassB, smistudy.ClassC:
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown -class %q (want S, A, B or C)", s)
}

// parseCache validates the -cache flag; anything but the two known
// behaviors is an operator typo, not a request for the default.
func parseCache(s string) (smistudy.CacheBehavior, error) {
	switch s {
	case "friendly":
		return smistudy.CacheFriendly, nil
	case "unfriendly":
		return smistudy.CacheUnfriendly, nil
	}
	return 0, fmt.Errorf("unknown -cache %q (want friendly or unfriendly)", s)
}

// parseSMM validates the -smm flag shared by the NAS workload path.
func parseSMM(level int) (smistudy.SMMLevel, error) {
	levels := []smistudy.SMMLevel{smistudy.SMM0, smistudy.SMM1, smistudy.SMM2}
	if level < 0 || level >= len(levels) {
		return 0, fmt.Errorf("-smm must be 0, 1 or 2 (got %d)", level)
	}
	return levels[level], nil
}
