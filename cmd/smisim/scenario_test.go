package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smistudy/internal/runner"
	"smistudy/internal/scenario"
)

// runCLI invokes the command exactly as main would, capturing output.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeScenario drops a scenario document into a temp dir.
func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cell.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioMatchesFlags pins the acceptance contract of the
// refactor: a scenario file reproduces the legacy flag path's stdout
// byte for byte, for each workload family.
func TestScenarioMatchesFlags(t *testing.T) {
	cases := []struct {
		name  string
		flags []string
		doc   string
	}{
		{
			"table-cell",
			[]string{"-workload", "nas", "-bench", "BT", "-class", "S", "-nodes", "4", "-rpn", "1", "-smm", "2", "-runs", "2"},
			`{"workload": "nas", "machine": {"nodes": 4}, "smm": {"level": "long"},
			  "runs": 2, "params": {"bench": "BT", "class": "S"}}`,
		},
		{
			"faulted-cell",
			[]string{"-workload", "nas", "-bench", "BT", "-class", "S", "-nodes", "4", "-loss", "0.05", "-watchdog", "5"},
			`{"workload": "nas", "machine": {"nodes": 4}, "faults": {"loss_prob": 0.05},
			  "watchdog_s": 5, "params": {"bench": "BT", "class": "S"}}`,
		},
		{
			"convolve",
			[]string{"-workload", "convolve", "-cache", "unfriendly", "-cpus", "6", "-interval", "150", "-runs", "2"},
			`{"workload": "convolve", "machine": {"cpus": 6}, "smm": {"interval_ms": 150},
			  "runs": 2, "params": {"cache": "unfriendly"}}`,
		},
		{
			"unixbench",
			[]string{"-workload", "unixbench", "-cpus", "2", "-interval", "600"},
			`{"workload": "unixbench", "machine": {"cpus": 2},
			  "smm": {"level": "long", "interval_ms": 600}, "params": {"duration_s": 2}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, legacyOut, legacyErr := runCLI(t, tc.flags...)
			if code != 0 {
				t.Fatalf("legacy path exit %d: %s", code, legacyErr)
			}
			path := writeScenario(t, tc.doc)
			code, scenarioOut, scenarioErr := runCLI(t, "-scenario", path)
			if code != 0 {
				t.Fatalf("scenario path exit %d: %s", code, scenarioErr)
			}
			if scenarioOut != legacyOut {
				t.Fatalf("outputs diverge:\nlegacy:\n%s\nscenario:\n%s", legacyOut, scenarioOut)
			}
		})
	}
}

// TestScenarioRejectsCellFlags pins the conflict rule: flags describing
// the cell cannot ride along with a scenario file.
func TestScenarioRejectsCellFlags(t *testing.T) {
	path := writeScenario(t, `{"workload": "nas", "params": {"bench": "EP", "class": "S"}}`)
	code, _, stderr := runCLI(t, "-scenario", path, "-bench", "EP")
	if code != 2 || !strings.Contains(stderr, "cannot be combined") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	// Execution and output flags stay legal.
	if code, _, stderr := runCLI(t, "-scenario", path, "-parallel", "2"); code != 0 {
		t.Fatalf("-parallel rejected: exit %d, stderr %q", code, stderr)
	}
}

// TestScenarioUsageErrors pins exit code 2 for unreadable or invalid
// scenario documents and unknown workloads.
func TestScenarioUsageErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown workload": `{"workload": "tetris"}`,
		"unknown field":    `{"workload": "nas", "bogus": 1, "params": {"bench": "EP", "class": "S"}}`,
		"bad class":        `{"workload": "nas", "params": {"bench": "EP", "class": "Z"}}`,
	} {
		path := writeScenario(t, doc)
		if code, _, _ := runCLI(t, "-scenario", path); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
	if code, _, _ := runCLI(t, "-scenario", filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Error("missing scenario file should exit 2")
	}
}

// TestFaultFailureExitsZero pins the fault-scenario contract: a job the
// fault plan kills is a reported result (exit 0), not a tool failure.
func TestFaultFailureExitsZero(t *testing.T) {
	path := writeScenario(t, `{"workload": "nas", "machine": {"nodes": 4},
	  "faults": {"crash_node": 1, "crash_at_s": 0.001}, "watchdog_s": 2,
	  "params": {"bench": "BT", "class": "S"}}`)
	code, stdout, stderr := runCLI(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "job failed under faults") {
		t.Fatalf("missing failure report:\n%s", stdout)
	}
	// An invalid fault plan, by contrast, is an operator error: exit 1.
	bad := writeScenario(t, `{"workload": "nas", "machine": {"nodes": 2},
	  "faults": {"crash_node": 9, "crash_at_s": 1}, "params": {"bench": "EP", "class": "S"}}`)
	if code, _, _ := runCLI(t, "-scenario", bad); code != 1 {
		t.Errorf("invalid fault plan: exit %d, want 1", code)
	}
}

// TestListWorkloads pins that every registered workload is listed.
func TestListWorkloads(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list-workloads")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, w := range []string{"nas", "convolve", "unixbench", "rim", "energy", "drift", "profiler"} {
		if !strings.Contains(stdout, w) {
			t.Errorf("workload %q missing from listing:\n%s", w, stdout)
		}
	}
}

// TestExampleScenarios pins that every shipped example parses and
// validates (running them all here would be too slow; CI's smoke job
// executes one end to end).
func TestExampleScenarios(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no example scenarios found (err=%v)", err)
	}
	for _, path := range matches {
		sp, err := scenario.Load(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if err := runner.Validate(sp); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
		}
	}
}
