// Command smivalidate is the paper-fidelity gate: it re-runs the
// reproduced tables, figures and extension studies, aggregates each
// cell across repeated seeds, and judges the results against the
// declarative tolerance bands in internal/paperdata and the ordering/
// residual gates in internal/fidelity.
//
// Usage:
//
//	smivalidate -quick                    # PR tier: reduced grids
//	smivalidate -full                     # main tier: paper-scale grids
//	smivalidate -only table3              # one artifact
//	smivalidate -quick -json report.json  # machine-readable report
//	smivalidate -quick -golden results/golden   # also byte-compare goldens
//	smivalidate -update-golden            # regenerate results/golden
//	smivalidate -bench-baseline results/BENCH_sweeps.json \
//	    -bench-new new_bench.json -bench-tol 15   # perf regression gate
//
// Exit status: 0 when every gate passes, 1 when any gate fails or the
// run errors, 2 on usage errors. -smi-scale deliberately perturbs the
// simulated physics (multiplying every SMI duration) so the gates can
// be demonstrated to trip; CI never sets it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"smistudy/internal/experiments"
	"smistudy/internal/fidelity"
	"smistudy/internal/obs"
	"smistudy/internal/paperdata"
	"smistudy/internal/parsweep"
	"smistudy/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status, so tests can drive
// the full flag surface without spawning processes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smivalidate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "quick tier: reduced grids, PR CI (default)")
	full := fs.Bool("full", false, "full tier: paper-scale grids, main CI")
	only := fs.String("only", "", "comma-separated artifact subset (e.g. table3,figure1)")
	seeds := fs.String("seeds", "", "comma-separated base seeds (default 1,2)")
	runs := fs.Int("runs", 0, "runs per cell within one seed (0 = tier default)")
	parallel := fs.Int("parallel", 0, "concurrent sweep cells (0 = all CPUs, 1 = sequential)")
	jsonOut := fs.String("json", "", "write the machine-readable report JSON to this file")
	golden := fs.String("golden", "", "byte-compare each artifact's JSON against <dir>/<artifact>.json (quick tier)")
	updateGolden := fs.Bool("update-golden", false, "regenerate the golden JSONs (into -golden, default results/golden) and exit")
	smiScale := fs.Float64("smi-scale", 0, "physics perturbation: multiply every SMI duration (0 or 1 = off)")
	fastpath := fs.String("fastpath", "off", "analytic fast-path dispatch: off, auto (byte-identical) or model (approximate)")
	shards := fs.Int("shards", 1, "per-cell engine shards (1 = sequential; any value is bit-identical)")
	expectFile := fs.String("expectations", "", "JSON expectation set overriding the built-in per-cell bands")
	benchBaseline := fs.String("bench-baseline", "", "bench mode: committed BENCH_sweeps.json baseline")
	benchNew := fs.String("bench-new", "", "bench mode: freshly measured BENCH_sweeps.json")
	benchTol := fs.Float64("bench-tol", 15, "bench mode: allowed regression percent per entry")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "smivalidate:", err)
		return 1
	}
	if *quick && *full {
		fmt.Fprintln(stderr, "smivalidate: -quick and -full are mutually exclusive")
		return 2
	}
	if (*benchBaseline == "") != (*benchNew == "") {
		fmt.Fprintln(stderr, "smivalidate: -bench-baseline and -bench-new must be given together")
		return 2
	}

	if *benchBaseline != "" {
		cmp, err := compareBenchFiles(*benchBaseline, *benchNew, *benchTol)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, cmp.Render())
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, cmp); err != nil {
				return fail(err)
			}
		}
		if !cmp.Ok() {
			return 1
		}
		return 0
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintln(stderr, "smivalidate:", err)
		return 2
	}
	fpMode, err := runner.ParseFastPathMode(*fastpath)
	if err != nil {
		fmt.Fprintln(stderr, "smivalidate:", err)
		return 2
	}
	cfg := fidelity.Config{
		Full:     *full,
		Only:     splitList(*only),
		Seeds:    seedList,
		Runs:     *runs,
		Workers:  workerCount(*parallel),
		SMIScale: *smiScale,
		Shards:   *shards,
		GoldenDir: func() string {
			if *updateGolden {
				return ""
			}
			return *golden
		}(),
	}
	if fpMode != runner.FastOff {
		cfg.Dispatch = runner.NewDispatcher(fpMode, 0)
	}
	if *expectFile != "" {
		data, err := os.ReadFile(*expectFile)
		if err != nil {
			return fail(err)
		}
		set, err := paperdata.ParseExpectations(data)
		if err != nil {
			return fail(err)
		}
		cfg.Expectations = &set
	}

	if *updateGolden {
		dir := *golden
		if dir == "" {
			dir = filepath.Join("results", "golden")
		}
		manifest := obs.Capture("smivalidate", fs, "json", "golden", "update-golden")
		if err := fidelity.UpdateGolden(cfg, dir, &manifest); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "regenerated goldens in %s (%s tier)\n", dir, cfg.Tier())
		return 0
	}

	rep, err := fidelity.Validate(cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, rep.Render())
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, *rep); err != nil {
			return fail(err)
		}
	}
	if !rep.Ok() {
		return 1
	}
	return 0
}

// workerCount resolves the -parallel flag (0 = every CPU).
func workerCount(parallel int) int {
	if parallel < 1 {
		return parsweep.Workers(0)
	}
	return parallel
}

// parseSeeds parses a comma-separated seed list.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range splitList(s) {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %w", part, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("bad -seeds entry %q: seed 0 means \"default\" throughout the tree and would silently alias seed 1", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// compareBenchFiles loads both bench reports and judges the regression.
func compareBenchFiles(baselinePath, newPath string, tolPct float64) (fidelity.BenchComparison, error) {
	baseline, err := loadBench(baselinePath)
	if err != nil {
		return fidelity.BenchComparison{}, err
	}
	fresh, err := loadBench(newPath)
	if err != nil {
		return fidelity.BenchComparison{}, err
	}
	return fidelity.CompareBench(baseline, fresh, tolPct), nil
}

func loadBench(path string) (experiments.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return experiments.BenchReport{}, err
	}
	return fidelity.LoadBenchReport(data)
}

// writeJSON writes v's JSON form to path.
func writeJSON(path string, v interface{ JSON() ([]byte, error) }) error {
	data, err := v.JSON()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}
