package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives run() with captured streams.
func runCLI(args ...string) (code int, out, errOut string) {
	var stdout, stderr bytes.Buffer
	code = run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrorsExit2(t *testing.T) {
	cases := [][]string{
		{"-quick", "-full"},                  // mutually exclusive tiers
		{"-bench-baseline", "only-one.json"}, // bench flags must pair
		{"-bench-new", "only-one.json"},
		{"-seeds", "1,zebra"}, // unparseable seed
		{"-seeds", "0"},       // seed 0 aliases the default seed
		{"-nosuchflag"},       // flag package's own parse error
	}
	for _, args := range cases {
		if code, _, _ := runCLI(args...); code != 2 {
			t.Fatalf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestUnknownArtifactExits1(t *testing.T) {
	code, _, errOut := runCLI("-quick", "-only", "table9")
	if code != 1 || !strings.Contains(errOut, "unknown artifact") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestQuickArtifactPassesAndWritesJSON(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	code, out, errOut := runCLI("-quick", "-only", "faults", "-seeds", "1", "-json", jsonPath)
	if code != 0 {
		t.Fatalf("code=%d stdout=%q stderr=%q", code, out, errOut)
	}
	if !strings.Contains(out, "faults") {
		t.Fatalf("report table missing artifact name:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"tier": "quick"`) {
		t.Fatalf("JSON report missing tier: %s", data)
	}
}

func TestPerturbedPhysicsExits1(t *testing.T) {
	code, out, _ := runCLI("-quick", "-only", "table2", "-seeds", "1", "-smi-scale", "2")
	if code != 1 {
		t.Fatalf("doubled SMI duration must exit 1, got %d\n%s", code, out)
	}
}

func TestBenchModeExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	slow := filepath.Join(dir, "slow.json")
	doc := `{"sweeps":[{"name":"table1","workers":1,"wall_ms":100,"mallocs":1000}]}`
	slowDoc := `{"sweeps":[{"name":"table1","workers":1,"wall_ms":200,"mallocs":1000}]}`
	for path, body := range map[string]string{base: doc, same: doc, slow: slowDoc} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if code, out, _ := runCLI("-bench-baseline", base, "-bench-new", same); code != 0 {
		t.Fatalf("identical bench run must pass, got %d\n%s", code, out)
	}
	if code, _, _ := runCLI("-bench-baseline", base, "-bench-new", slow); code != 1 {
		t.Fatal("100% wall regression must exit 1")
	}
	if code, _, _ := runCLI("-bench-baseline", base, "-bench-new", filepath.Join(dir, "absent.json")); code != 1 {
		t.Fatal("unreadable bench file must exit 1")
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", got, err)
	}
	if got, err := parseSeeds(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	for _, s := range []string{"x", "1,0", "9999999999999999999999"} {
		if _, err := parseSeeds(s); err == nil {
			t.Fatalf("parseSeeds(%q) accepted", s)
		}
	}
}

func TestSplitListAndWorkers(t *testing.T) {
	if got := splitList(" a, ,b ,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty splitList must be nil")
	}
	if workerCount(3) != 3 {
		t.Fatal("explicit -parallel must win")
	}
	if workerCount(0) < 1 || workerCount(-1) < 1 {
		t.Fatal("defaulted worker count must be positive")
	}
}
