// Command smiserve runs the multi-tenant sweep service: an HTTP/JSON
// front end over the durable cell runner (internal/serve). Submissions
// — single scenario cells or declarative parameter grids — are
// validated, content-addressed and deduplicated against both the
// persistent store and in-flight work, then executed across a bounded
// worker fleet behind a weighted fair queue with admission control.
//
// Usage:
//
//	smiserve -addr 127.0.0.1:8080 -store results/store
//	smiserve -addr 127.0.0.1:0 -addr-file /tmp/addr   # ephemeral port
//
// Endpoints:
//
//	POST /v1/sweeps              submit specs and/or a grid (202, or 429 + Retry-After)
//	GET  /v1/sweeps/{id}         job status with per-spec measurements
//	GET  /v1/sweeps/{id}/events  SSE progress stream (history + live)
//	GET  /v1/results/{hash}      every stored run of one content address
//	GET  /healthz /readyz /metricsz
//
// A store that fails to open degrades the server instead of crashing
// it: /healthz stays 200 while /readyz and submissions report 503, so
// an orchestrator holds traffic and retries readiness.
//
// On SIGINT the server stops accepting connections, drains in-flight
// cells and writes the -manifest with its lifetime serve/durable
// accounting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"smistudy/internal/obs"
	"smistudy/internal/runner"
	"smistudy/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	storeDir := fs.String("store", "", "content-addressed result store directory (empty: memory-only, nothing survives a restart)")
	workers := fs.Int("workers", 0, "execution worker fleet size (0 = one per CPU)")
	maxQueued := fs.Int("max-queued", 0, "admitted unfinished cells before 429 (0 = 4096)")
	cellTimeout := fs.Duration("cell-timeout", 0, "wall-clock deadline per cell (0 = none)")
	retries := fs.Int("retries", 0, "re-run transiently-failed cells up to this many times")
	fastpath := fs.String("fastpath", "off", "analytic fast-path dispatch: off, auto or model")
	shards := fs.Int("shards", 1, "per-cell engine shards (any value is bit-identical)")
	manifestOut := fs.String("manifest", "", "write the server's lifetime accounting manifest here at shutdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "smiserve:", err)
		return 1
	}

	fpMode, err := runner.ParseFastPathMode(*fastpath)
	if err != nil {
		fmt.Fprintln(stderr, "smiserve:", err)
		return 2
	}
	cfg := serve.Config{
		StoreDir:    *storeDir,
		Workers:     *workers,
		MaxQueued:   *maxQueued,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		Shards:      *shards,
	}
	if fpMode != runner.FastOff {
		cfg.Dispatch = runner.NewDispatcher(fpMode, 0)
	}

	// The manifest is captured up front (flags + versions) and written at
	// shutdown with the serve/durable accounting attached. Output flags
	// are excluded so a replayed configuration can choose its own.
	manifest := obs.Capture("smiserve", fs, "addr", "addr-file", "manifest")

	srv := serve.New(cfg)
	if err := srv.Ready(); err != nil {
		// Degraded, not dead: keep serving so /readyz reports the reason,
		// exactly as the orchestrator contract wants.
		fmt.Fprintf(stderr, "smiserve: store unavailable, serving degraded: %v\n", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fail(err)
		}
	}
	fmt.Fprintf(stderr, "smiserve: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	code := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "smiserve: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			fmt.Fprintln(stderr, "smiserve: shutdown:", err)
			code = 1
		}
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "smiserve: store close:", err)
		code = 1
	}

	stats := srv.Stats()
	manifest.Serve = &stats
	manifest.Durable = srv.DurableStats()
	fmt.Fprintf(stderr, "smiserve: %d submissions, %d cells (%d executed, %d cached, %d coalesced, %d failed), dedup %.0f%%\n",
		stats.Submissions, stats.Cells, stats.Executed, stats.Cached,
		stats.Coalesced, stats.Failed, 100*stats.DedupRate())
	if *manifestOut != "" {
		data, err := manifest.JSON()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*manifestOut, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "  manifest → %s\n", *manifestOut)
	}
	return code
}
