// Command smiload drives a running smiserve with a configurable
// open-loop submission mix and verifies every job end to end: each
// submission is POSTed, its SSE event stream is read to the terminal
// event, and its final status document is checked. The report —
// throughput, dedup rate, per-client fairness spread, latency
// percentiles — is what CI's serve-load gate asserts against.
//
// Usage:
//
//	smiload -addr 127.0.0.1:8080 -n 200 -concurrency 32 -dup 0.8
//	smiload -addr $(cat /tmp/addr) -json > report.json
//
// The spec pool is deterministic in -seed: a warm second run with the
// same flags submits byte-identical cells, so against a persistent
// store it must execute nothing.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smistudy/internal/scenario"
	"smistudy/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the machine-readable outcome CI parses.
type report struct {
	Submissions int `json:"submissions"`
	UniqueSpecs int `json:"unique_specs"`
	Errors      int `json:"errors"`
	Rejected429 int `json:"rejected_429"` // admission pushback seen (all retried)
	Cells       struct {
		Total     int `json:"total"`
		Executed  int `json:"executed"`
		Cached    int `json:"cached"`
		Coalesced int `json:"coalesced"`
		Failed    int `json:"failed"`
	} `json:"cells"`
	SSE struct {
		Checked int `json:"checked"`
		OK      int `json:"ok"`
	} `json:"sse"`
	DedupRate  float64 `json:"dedup_rate"`
	WallS      float64 `json:"wall_s"`
	Throughput float64 `json:"submissions_per_s"`
	Latency    struct {
		P50MS float64 `json:"p50_ms"`
		P95MS float64 `json:"p95_ms"`
		MaxMS float64 `json:"max_ms"`
	} `json:"latency"`
	Fairness struct {
		Clients map[string]float64 `json:"client_mean_ms"`
		Spread  float64            `json:"spread"` // max/min client mean
	} `json:"fairness"`
}

// result is one submission's verified outcome.
type result struct {
	client  string
	latency time.Duration
	status  serve.JobStatus
	sseOK   bool
	retried int
	err     error
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smiload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "server address (host:port, required)")
	n := fs.Int("n", 200, "submissions to issue")
	concurrency := fs.Int("concurrency", 32, "concurrent in-flight submissions")
	dup := fs.Float64("dup", 0.8, "fraction of submissions that duplicate another's spec [0, 1)")
	clients := fs.Int("clients", 4, "distinct client identities to spread submissions across")
	seed := fs.Int64("seed", 1, "spec-pool seed; same seed ⇒ byte-identical cells")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "smiload:", err)
		return 2
	}
	if *addr == "" {
		return usage(fmt.Errorf("-addr is required"))
	}
	if *n < 1 || *concurrency < 1 || *clients < 1 {
		return usage(fmt.Errorf("-n, -concurrency and -clients must be ≥ 1"))
	}
	if *dup < 0 || *dup >= 1 {
		return usage(fmt.Errorf("-dup must be in [0, 1)"))
	}
	base := "http://" + *addr

	// Deterministic submission plan: the first `unique` submissions
	// introduce distinct specs (so every pool entry is used), the rest
	// resubmit a uniformly chosen earlier spec.
	unique := int(math.Round(float64(*n) * (1 - *dup)))
	if unique < 1 {
		unique = 1
	}
	if unique > *n {
		unique = *n
	}
	rng := rand.New(rand.NewSource(*seed))
	pool := make([]json.RawMessage, unique)
	for i := range pool {
		sp := scenario.Spec{
			Workload: "nas",
			SMM:      scenario.SMMPlan{Level: "none"},
			Runs:     1,
			Seed:     *seed*100000 + int64(i) + 1,
			Params:   scenario.Params{Bench: "EP", Class: "S"},
		}
		data, err := sp.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "smiload:", err)
			return 1
		}
		pool[i] = data
	}
	plan := make([]int, *n)
	for i := range plan {
		if i < unique {
			plan[i] = i
		} else {
			plan[i] = rng.Intn(unique)
		}
	}

	// One transport sized for the full concurrency: every in-flight
	// submission holds an SSE stream open on top of its POST.
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * *concurrency,
		MaxIdleConnsPerHost: 2 * *concurrency,
	}}

	results := make([]result, *n)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				client := fmt.Sprintf("client-%d", i%*clients)
				results[i] = submitAndVerify(hc, base, client, pool[plan[i]])
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	rep := summarize(results, unique, wall)
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "smiload:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		printReport(stdout, rep)
	}
	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(stderr, "smiload: submission %d (%s): %v\n", i, r.client, r.err)
		}
	}
	if rep.Errors > 0 || rep.SSE.OK != rep.SSE.Checked || rep.Cells.Failed > 0 {
		return 1
	}
	return 0
}

// submitAndVerify drives one submission end to end: POST (retrying 429s
// per Retry-After), SSE stream to the terminal event, final status.
func submitAndVerify(hc *http.Client, base, client string, spec json.RawMessage) result {
	r := result{client: client}
	start := time.Now()

	body, err := json.Marshal(serve.SubmitRequest{Client: client, Specs: []json.RawMessage{spec}})
	if err != nil {
		r.err = err
		return r
	}
	var sub serve.SubmitResponse
	for attempt := 0; ; attempt++ {
		resp, err := hc.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			r.err = err
			return r
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			r.err = err
			return r
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			r.retried++
			if attempt >= 20 {
				r.err = fmt.Errorf("still overloaded after %d retries", attempt)
				return r
			}
			sec, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if sec < 1 {
				sec = 1
			}
			time.Sleep(time.Duration(sec) * time.Second)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			r.err = fmt.Errorf("submit: %d: %s", resp.StatusCode, data)
			return r
		}
		if err := json.Unmarshal(data, &sub); err != nil {
			r.err = fmt.Errorf("submit response: %w", err)
			return r
		}
		break
	}

	r.sseOK, err = watchSSE(hc, base+sub.EventsURL)
	if err != nil {
		r.err = err
		return r
	}

	resp, err := hc.Get(base + sub.StatusURL)
	if err != nil {
		r.err = err
		return r
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&r.status); err != nil {
		r.err = fmt.Errorf("status: %w", err)
		return r
	}
	if r.status.State == "running" {
		r.err = fmt.Errorf("job %s still running after its SSE stream terminated", sub.ID)
	}
	r.latency = time.Since(start)
	return r
}

// watchSSE reads a job's event stream and reports whether it delivered
// a well-formed terminal event.
func watchSSE(hc *http.Client, url string) (bool, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return false, fmt.Errorf("events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Kind  string `json:"kind"`
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return false, fmt.Errorf("events: bad frame %q: %w", line, err)
		}
		if ev.Kind == "job" && (ev.State == "done" || ev.State == "failed") {
			terminal = true
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("events: %w", err)
	}
	return terminal, nil
}

func summarize(results []result, unique int, wall time.Duration) report {
	var rep report
	rep.Submissions = len(results)
	rep.UniqueSpecs = unique
	rep.WallS = wall.Seconds()
	rep.Throughput = float64(len(results)) / wall.Seconds()
	rep.Fairness.Clients = map[string]float64{}

	perClient := map[string][]float64{}
	var lats []float64
	for _, r := range results {
		if r.err != nil {
			rep.Errors++
			continue
		}
		rep.Rejected429 += r.retried
		rep.SSE.Checked++
		if r.sseOK {
			rep.SSE.OK++
		}
		rep.Cells.Total += r.status.Cells.Total
		rep.Cells.Executed += r.status.Cells.Executed
		rep.Cells.Cached += r.status.Cells.Cached
		rep.Cells.Coalesced += r.status.Cells.Coalesced
		rep.Cells.Failed += r.status.Cells.Failed
		ms := float64(r.latency) / float64(time.Millisecond)
		lats = append(lats, ms)
		perClient[r.client] = append(perClient[r.client], ms)
	}
	if rep.Cells.Total > 0 {
		rep.DedupRate = float64(rep.Cells.Cached+rep.Cells.Coalesced) / float64(rep.Cells.Total)
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		rep.Latency.P50MS = lats[len(lats)/2]
		rep.Latency.P95MS = lats[len(lats)*95/100]
		rep.Latency.MaxMS = lats[len(lats)-1]
	}
	minMean, maxMean := math.Inf(1), 0.0
	for client, ms := range perClient {
		var sum float64
		for _, v := range ms {
			sum += v
		}
		mean := sum / float64(len(ms))
		rep.Fairness.Clients[client] = mean
		minMean = math.Min(minMean, mean)
		maxMean = math.Max(maxMean, mean)
	}
	if minMean > 0 && !math.IsInf(minMean, 1) {
		rep.Fairness.Spread = maxMean / minMean
	}
	return rep
}

func printReport(w io.Writer, rep report) {
	fmt.Fprintf(w, "submissions  %d (%d unique specs, %d errors, %d rejected-then-retried)\n",
		rep.Submissions, rep.UniqueSpecs, rep.Errors, rep.Rejected429)
	fmt.Fprintf(w, "cells        %d total: %d executed, %d cached, %d coalesced, %d failed (dedup %.0f%%)\n",
		rep.Cells.Total, rep.Cells.Executed, rep.Cells.Cached,
		rep.Cells.Coalesced, rep.Cells.Failed, 100*rep.DedupRate)
	fmt.Fprintf(w, "sse          %d/%d streams terminated cleanly\n", rep.SSE.OK, rep.SSE.Checked)
	fmt.Fprintf(w, "throughput   %.1f submissions/s over %.2fs\n", rep.Throughput, rep.WallS)
	fmt.Fprintf(w, "latency      p50 %.1fms  p95 %.1fms  max %.1fms\n",
		rep.Latency.P50MS, rep.Latency.P95MS, rep.Latency.MaxMS)
	clients := make([]string, 0, len(rep.Fairness.Clients))
	for c := range rep.Fairness.Clients {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		fmt.Fprintf(w, "fairness     %-12s mean %.1fms\n", c, rep.Fairness.Clients[c])
	}
	if rep.Fairness.Spread > 0 {
		fmt.Fprintf(w, "fairness     spread (max/min client mean) %.2f\n", rep.Fairness.Spread)
	}
}
