package main

import "testing"

func TestValidateShape(t *testing.T) {
	ok := [][3]int{{4, 1, 1000}, {2, 1, 1}, {1, 2, 500}}
	for _, c := range ok {
		if err := validateShape(c[0], c[1], c[2]); err != nil {
			t.Fatalf("validateShape(%v) = %v", c, err)
		}
	}
	bad := [][3]int{
		{0, 1, 1000},  // no nodes
		{4, 0, 1000},  // no ranks per node
		{1, 1, 1000},  // single rank: ping-pong has no peer
		{4, 1, 0},     // SMI period of zero would never fire (or divide by zero)
		{-2, -2, 100}, // negatives must not sneak through via the product
	}
	for _, c := range bad {
		if err := validateShape(c[0], c[1], c[2]); err == nil {
			t.Fatalf("validateShape(%v) accepted", c)
		}
	}
}
