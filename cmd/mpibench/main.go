// Command mpibench measures the simulated cluster's communication
// characteristics OSU-microbenchmark-style: point-to-point latency and
// bandwidth versus message size, and collective (allreduce, alltoall,
// barrier) latency versus rank count — with or without SMI injection, so
// the fabric and MPI models can be inspected directly.
//
// Usage:
//
//	mpibench                       # quiet fabric
//	mpibench -smm 2 -interval 500  # with long SMIs every 500ms
//	mpibench -nodes 8 -rpn 4
package main

import (
	"flag"
	"fmt"
	"os"

	"smistudy/internal/cluster"
	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/metrics"
	"smistudy/internal/mpi"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

var prof = cpu.Profile{CPI: 1}

func main() {
	nodes := flag.Int("nodes", 4, "cluster nodes")
	rpn := flag.Int("rpn", 1, "ranks per node")
	level := flag.Int("smm", 0, "SMM level: 0 none, 1 short, 2 long")
	interval := flag.Int("interval", 1000, "SMI interval in ms")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *level < 0 || *level > 2 {
		fmt.Fprintln(os.Stderr, "mpibench: -smm must be 0, 1 or 2")
		os.Exit(2)
	}
	smi := smm.DriverConfig{
		Level:         smm.Level(*level),
		PeriodJiffies: uint64(*interval),
		PhaseJitter:   true,
	}

	fmt.Printf("simulated fabric, %d nodes × %d ranks, %v\n\n", *nodes, *rpn, smi.Level)
	pingpong(*nodes, *rpn, smi, *seed)
	collectives(*nodes, *rpn, smi, *seed)
}

// newWorld builds a fresh world (each measurement gets its own engine).
func newWorld(nodes, rpn int, smi smm.DriverConfig, seed int64) *mpi.World {
	e := sim.New(seed)
	par := cluster.Wyeast(nodes, false, smm.SMMNone)
	par.Node.SMI = smi
	cl := cluster.MustNew(e, par)
	cl.StartSMI()
	return mpi.MustNewWorld(cl, rpn, mpi.DefaultParams())
}

// pingpong measures rank0↔rank1 latency and bandwidth per message size.
func pingpong(nodes, rpn int, smi smm.DriverConfig, seed int64) {
	tab := metrics.NewTable("size (B)", "latency (us)", "bandwidth (MB/s)")
	for _, size := range []int{8, 256, 4 << 10, 64 << 10, 1 << 20, 4 << 20} {
		iters := 50
		if size >= 1<<20 {
			iters = 10
		}
		w := newWorld(nodes, rpn, smi, seed)
		var rtt sim.Time
		w.Run(prof, func(r *mpi.Rank, tk *kernel.Task) {
			switch r.ID() {
			case 0:
				start := tk.Gettime()
				for i := 0; i < iters; i++ {
					r.Send(tk, 1, 1, size)
					r.Recv(tk, 1, 2)
				}
				rtt = (tk.Gettime() - start) / sim.Time(iters)
			case 1:
				for i := 0; i < iters; i++ {
					r.Recv(tk, 0, 1)
					r.Send(tk, 0, 2, size)
				}
			}
		})
		lat := float64(rtt) / 2 / float64(sim.Microsecond)
		bw := float64(size) / (float64(rtt) / 2 / float64(sim.Second)) / 1e6
		tab.AddRow(size, lat, bw)
	}
	fmt.Println("ping-pong (rank 0 ↔ rank 1):")
	fmt.Println(tab.String())
}

// collectives measures barrier/allreduce/alltoall latency at the job's
// full size.
func collectives(nodes, rpn int, smi smm.DriverConfig, seed int64) {
	tab := metrics.NewTable("collective", "payload (B)", "mean latency (us)")
	type op struct {
		name  string
		bytes int
		fn    func(r *mpi.Rank, tk *kernel.Task, bytes int)
	}
	ops := []op{
		{"Barrier", 0, func(r *mpi.Rank, tk *kernel.Task, _ int) { r.Barrier(tk) }},
		{"Allreduce", 8, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Allreduce(tk, b) }},
		{"Allreduce", 64 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Allreduce(tk, b) }},
		{"Alltoall", 1 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Alltoall(tk, b) }},
		{"Alltoall", 256 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Alltoall(tk, b) }},
		{"Allgather", 4 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Allgather(tk, b) }},
	}
	for _, o := range ops {
		const iters = 20
		w := newWorld(nodes, rpn, smi, seed)
		var mean sim.Time
		w.Run(prof, func(r *mpi.Rank, tk *kernel.Task) {
			start := tk.Gettime()
			for i := 0; i < iters; i++ {
				o.fn(r, tk, o.bytes)
			}
			if r.ID() == 0 {
				mean = (tk.Gettime() - start) / iters
			}
		})
		tab.AddRow(o.name, o.bytes, float64(mean)/float64(sim.Microsecond))
	}
	fmt.Printf("collectives (%d ranks):\n", nodes*rpn)
	fmt.Println(tab.String())
}
