// Command mpibench measures the simulated cluster's communication
// characteristics OSU-microbenchmark-style: point-to-point latency and
// bandwidth versus message size, and collective (allreduce, alltoall,
// barrier) latency versus rank count — with or without SMI injection, so
// the fabric and MPI models can be inspected directly.
//
// Usage:
//
//	mpibench                       # quiet fabric
//	mpibench -smm 2 -interval 500  # with long SMIs every 500ms
//	mpibench -nodes 8 -rpn 4
//	mpibench -trace t.json -metrics m.json  # per-measurement timelines
package main

import (
	"flag"
	"fmt"
	"os"

	"smistudy/internal/cpu"
	"smistudy/internal/kernel"
	"smistudy/internal/metrics"
	"smistudy/internal/mpi"
	"smistudy/internal/obs"
	"smistudy/internal/runner"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
)

var prof = cpu.Profile{CPI: 1}

// bus is non-nil when -trace or -metrics is given; every measurement's
// fresh engine is wired to it under a distinct run index, so the
// timeline shows each ping-pong size and collective as its own process
// group.
var (
	bus    *obs.Bus
	runIdx int32
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster nodes")
	rpn := flag.Int("rpn", 1, "ranks per node")
	level := flag.Int("smm", 0, "SMM level: 0 none, 1 short, 2 long")
	interval := flag.Int("interval", 1000, "SMI interval in ms")
	seed := flag.Int64("seed", 1, "random seed")
	traceOut := flag.String("trace", "", "stream a Chrome trace-event timeline of every measurement to this file")
	metricsOut := flag.String("metrics", "", "write the aggregated metrics snapshot as JSON to this file")
	manifestOut := flag.String("manifest", "", "write a reproducibility manifest (flags + versions) as JSON to this file")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpibench:", err)
			os.Exit(1)
		}
	}

	if *level < 0 || *level > 2 {
		fmt.Fprintln(os.Stderr, "mpibench: -smm must be 0, 1 or 2")
		os.Exit(2)
	}
	if err := validateShape(*nodes, *rpn, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "mpibench:", err)
		os.Exit(2)
	}
	smi := smm.DriverConfig{
		Level:         smm.Level(*level),
		PeriodJiffies: uint64(*interval),
		PhaseJitter:   true,
	}

	if *manifestOut != "" {
		m := obs.Capture("mpibench", flag.CommandLine, "trace", "metrics", "manifest")
		data, err := m.JSON()
		fail(err)
		fail(os.WriteFile(*manifestOut, data, 0o644))
	}
	var sink *obs.ChromeSink
	var traceFile *os.File
	if *traceOut != "" || *metricsOut != "" {
		bus = obs.NewBus()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fail(err)
			traceFile = f
			sink = obs.NewChromeSink(f)
			bus.Attach(sink)
		}
		defer func() {
			if sink != nil {
				fail(sink.Close())
				fail(traceFile.Close())
			}
			if *metricsOut != "" {
				data, err := bus.MetricsSnapshot().JSON()
				fail(err)
				fail(os.WriteFile(*metricsOut, data, 0o644))
			}
		}()
	}

	fmt.Printf("simulated fabric, %d nodes × %d ranks, %v\n\n", *nodes, *rpn, smi.Level)
	pingpong(*nodes, *rpn, smi, *seed)
	collectives(*nodes, *rpn, smi, *seed)
}

// validateShape rejects cluster shapes the measurements cannot run on:
// ping-pong needs ranks 0 and 1 to exist, and a non-positive SMI period
// or node/rank count would panic deep inside the cluster constructor
// instead of telling the operator which flag was wrong.
func validateShape(nodes, rpn, intervalMS int) error {
	if nodes < 1 || rpn < 1 {
		return fmt.Errorf("-nodes and -rpn must be at least 1 (got %d and %d)", nodes, rpn)
	}
	if nodes*rpn < 2 {
		return fmt.Errorf("ping-pong needs at least 2 ranks (got %d node × %d rank)", nodes, rpn)
	}
	if intervalMS < 1 {
		return fmt.Errorf("-interval must be at least 1 ms (got %d)", intervalMS)
	}
	return nil
}

// newWorld builds a fresh world (each measurement gets its own engine)
// through internal/runner's provisioning path, wired to the bus under
// the next run index when tracing is on.
func newWorld(nodes, rpn int, smi smm.DriverConfig, seed int64) *mpi.World {
	c := runner.MPIWorldConfig{
		Nodes: nodes, RanksPerNode: rpn, SMI: smi, Seed: seed,
	}
	if bus != nil {
		c.Tracer = bus
		c.Run = runIdx
		runIdx++
	}
	return runner.MPIWorld(c)
}

// pingpong measures rank0↔rank1 latency and bandwidth per message size.
func pingpong(nodes, rpn int, smi smm.DriverConfig, seed int64) {
	tab := metrics.NewTable("size (B)", "latency (us)", "bandwidth (MB/s)")
	for _, size := range []int{8, 256, 4 << 10, 64 << 10, 1 << 20, 4 << 20} {
		iters := 50
		if size >= 1<<20 {
			iters = 10
		}
		w := newWorld(nodes, rpn, smi, seed)
		var rtt sim.Time
		w.Run(prof, func(r *mpi.Rank, tk *kernel.Task) {
			switch r.ID() {
			case 0:
				start := tk.Gettime()
				for i := 0; i < iters; i++ {
					r.Send(tk, 1, 1, size)
					r.Recv(tk, 1, 2)
				}
				rtt = (tk.Gettime() - start) / sim.Time(iters)
			case 1:
				for i := 0; i < iters; i++ {
					r.Recv(tk, 0, 1)
					r.Send(tk, 0, 2, size)
				}
			}
		})
		lat := float64(rtt) / 2 / float64(sim.Microsecond)
		bw := float64(size) / (float64(rtt) / 2 / float64(sim.Second)) / 1e6
		tab.AddRow(size, lat, bw)
	}
	fmt.Println("ping-pong (rank 0 ↔ rank 1):")
	fmt.Println(tab.String())
}

// collectives measures barrier/allreduce/alltoall latency at the job's
// full size.
func collectives(nodes, rpn int, smi smm.DriverConfig, seed int64) {
	tab := metrics.NewTable("collective", "payload (B)", "mean latency (us)")
	type op struct {
		name  string
		bytes int
		fn    func(r *mpi.Rank, tk *kernel.Task, bytes int)
	}
	ops := []op{
		{"Barrier", 0, func(r *mpi.Rank, tk *kernel.Task, _ int) { r.Barrier(tk) }},
		{"Allreduce", 8, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Allreduce(tk, b) }},
		{"Allreduce", 64 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Allreduce(tk, b) }},
		{"Alltoall", 1 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Alltoall(tk, b) }},
		{"Alltoall", 256 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Alltoall(tk, b) }},
		{"Allgather", 4 << 10, func(r *mpi.Rank, tk *kernel.Task, b int) { r.Allgather(tk, b) }},
	}
	for _, o := range ops {
		const iters = 20
		w := newWorld(nodes, rpn, smi, seed)
		var mean sim.Time
		w.Run(prof, func(r *mpi.Rank, tk *kernel.Task) {
			start := tk.Gettime()
			for i := 0; i < iters; i++ {
				o.fn(r, tk, o.bytes)
			}
			if r.ID() == 0 {
				mean = (tk.Gettime() - start) / iters
			}
		})
		tab.AddRow(o.name, o.bytes, float64(mean)/float64(sim.Microsecond))
	}
	fmt.Printf("collectives (%d ranks):\n", nodes*rpn)
	fmt.Println(tab.String())
}
