// Command smireport turns run artifacts into reports. It consumes any
// subset of the files a smisim run leaves behind — the Chrome trace
// stream (-trace), the metrics snapshot (-metrics), the run manifest
// (-manifest) and the durable result store (-store) — and produces a
// self-contained HTML report (-html) and/or a machine-readable JSON
// document (-json).
//
// The report answers three questions the raw artifacts only imply:
//
//   - Where did the wall time go? A time-attribution tree decomposes
//     every CPU's timeline into compute, SMM-stolen, comm-wait,
//     fault-retransmit and idle — exactly, so the categories sum to the
//     wall time and any residue is flagged as an invariant violation.
//   - What did the run look like? A flame/icicle SVG of every timeline
//     in the trace, embedded inline (no scripts, no external assets).
//   - Which knobs mattered? Sweep cells from the durable store are
//     featurized and clustered; each scenario dimension is scored by
//     how well it explains the clusters, separating causal dimensions
//     (the SMI interval) from noise (the seed).
//
// Exit status: 0 on success, 1 on failure, 2 on usage errors, and 3
// when -check is set and any attribution invariant is violated — the
// mode CI uses to turn a silently-wrong trace pipeline into a red
// build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"smistudy/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smireport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "Chrome trace-event stream from a smisim -trace run")
	metricsPath := fs.String("metrics", "", "metrics snapshot JSON from a smisim -metrics run")
	manifestPath := fs.String("manifest", "", "run manifest JSON from a smisim -manifest run")
	storeDir := fs.String("store", "", "durable result store directory from a smisim -store sweep")
	htmlOut := fs.String("html", "", "write the self-contained HTML report to this file")
	jsonOut := fs.String("json", "", "write the machine-readable JSON report to this file (- for stdout)")
	check := fs.Bool("check", false, "exit 3 if any attribution invariant is violated")
	flameRuns := fs.Int("flame-runs", 4, "render flame timelines for at most this many runs")
	tol := fs.Float64("tol", 0.01, "attribution invariant tolerance as a fraction of wall time")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "smireport: %v\n", err)
		return 1
	}
	usage := func(err error) int {
		fmt.Fprintf(stderr, "smireport: %v\n", err)
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		return usage(fmt.Errorf("unexpected argument %q", fs.Arg(0)))
	}
	if *htmlOut == "" && *jsonOut == "" && !*check {
		return usage(fmt.Errorf("nothing to do: give -html, -json or -check"))
	}

	r, err := report.Build(report.Inputs{
		TracePath:    *tracePath,
		MetricsPath:  *metricsPath,
		ManifestPath: *manifestPath,
		StoreDir:     *storeDir,
		FlameRuns:    *flameRuns,
		Tol:          *tol,
	})
	if err != nil {
		if *tracePath == "" && *metricsPath == "" && *manifestPath == "" && *storeDir == "" {
			return usage(err)
		}
		return fail(err)
	}

	if *jsonOut != "" {
		data, err := r.JSON()
		if err != nil {
			return fail(err)
		}
		if *jsonOut == "-" {
			if _, err := stdout.Write(data); err != nil {
				return fail(err)
			}
		} else {
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "json → %s\n", *jsonOut)
		}
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, r.HTML(), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "html → %s\n", *htmlOut)
	}

	for _, w := range r.Warnings {
		fmt.Fprintf(stderr, "smireport: warning: %s\n", w)
	}
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintf(stderr, "smireport: violation: %s: %s\n", v.Path, v.Detail)
		}
		if *check {
			fmt.Fprintf(stderr, "smireport: %d attribution invariant(s) violated\n", len(r.Violations))
			return 3
		}
	} else if *check {
		fmt.Fprintln(stdout, "attribution invariants hold")
	}
	return 0
}
