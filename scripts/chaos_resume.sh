#!/usr/bin/env bash
# Chaos kill-resume-diff harness for the durable result store.
#
# Runs a scenario to completion once without a store to get the
# reference output, then repeatedly starts the same sweep against a
# persistent store and SIGKILLs it when the journal reaches a chosen
# byte offset — landing kills between cells, mid-journal-append and
# mid-object-write. After the kill schedule, one uninterrupted resume
# must reproduce the reference stdout byte for byte, and a final warm
# pass must replay every cell from the store without simulating
# anything ("0 executed" on stderr).
#
# Usage:
#   scripts/chaos_resume.sh [scenario.json]
#
# Environment:
#   CHAOS_DIR   working directory (default: mktemp -d; kept on failure
#               when set explicitly, so CI can upload the journal)
#   OFFSETS     space-separated journal byte offsets to kill at
set -euo pipefail
cd "$(dirname "$0")/.."

SCENARIO=${1:-examples/scenarios/table1-bt-a.json}
OFFSETS=${OFFSETS:-"150 700 310 450"}

if [ -n "${CHAOS_DIR:-}" ]; then
  WORK=$CHAOS_DIR
  mkdir -p "$WORK"
else
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT
fi

STORE="$WORK/store"
JOURNAL="$STORE/journal.jsonl"

go build -o "$WORK/smisim" ./cmd/smisim

echo "== reference: uninterrupted run, no store =="
"$WORK/smisim" -scenario "$SCENARIO" > "$WORK/ref.txt"

round=0
for offset in $OFFSETS; do
  round=$((round + 1))
  echo "== round $round: SIGKILL when journal reaches $offset bytes =="
  "$WORK/smisim" -scenario "$SCENARIO" -store "$STORE" -resume \
    > "$WORK/out.txt" 2> "$WORK/err.txt" &
  pid=$!
  while kill -0 "$pid" 2>/dev/null; do
    size=$(stat -c %s "$JOURNAL" 2>/dev/null || echo 0)
    if [ "$size" -ge "$offset" ]; then
      kill -9 "$pid" 2>/dev/null || true
      break
    fi
    sleep 0.01
  done
  wait "$pid" 2>/dev/null && echo "   (finished before the kill landed)" || true
  echo "   journal: $(stat -c %s "$JOURNAL" 2>/dev/null || echo 0) bytes"
done

echo "== final resume to completion =="
"$WORK/smisim" -scenario "$SCENARIO" -store "$STORE" -resume \
  > "$WORK/final.txt" 2> "$WORK/final.err"
cat "$WORK/final.err" >&2
diff "$WORK/ref.txt" "$WORK/final.txt"
echo "resumed output is byte-identical to the uninterrupted run"

echo "== warm pass: every cell replayed, zero simulations =="
"$WORK/smisim" -scenario "$SCENARIO" -store "$STORE" -resume \
  > "$WORK/warm.txt" 2> "$WORK/warm.err"
cat "$WORK/warm.err" >&2
grep -q ", 0 executed," "$WORK/warm.err" || {
  echo "FAIL: warm pass re-simulated cells" >&2
  exit 1
}
diff "$WORK/ref.txt" "$WORK/warm.txt"
echo "warm replay is byte-identical with zero simulations"
echo "chaos kill-resume harness: OK"
