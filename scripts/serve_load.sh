#!/usr/bin/env bash
# Load-proof harness for the sweep server (cmd/smiserve).
#
# Starts a server on an ephemeral port with a fresh persistent store,
# fires a cold pass of concurrent submissions with a heavy duplicate
# mix through cmd/smiload, then a warm pass with the identical spec
# pool, and asserts the dedup contract:
#
#   cold pass:  executions ≤ unique specs (+ small slack) — in-flight
#               duplicates coalesced, repeat submissions hit the store;
#               every submission's SSE stream terminated cleanly;
#               nothing failed.
#   warm pass:  0 executions — every cell replayed from the store.
#
# Finally the server is shut down with SIGINT and its manifest must
# carry the serve accounting block.
#
# Usage:
#   scripts/serve_load.sh
#
# Environment:
#   SERVE_DIR    working directory (default: mktemp -d; kept when set
#                explicitly, so CI can upload the report artifacts)
#   N            submissions per pass        (default 200)
#   DUP          duplicate fraction          (default 0.8)
#   CONCURRENCY  in-flight submissions       (default 32)
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-200}
DUP=${DUP:-0.8}
CONCURRENCY=${CONCURRENCY:-32}

if [ -n "${SERVE_DIR:-}" ]; then
  WORK=$SERVE_DIR
  mkdir -p "$WORK"
else
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT
fi

go build -o "$WORK/smiserve" ./cmd/smiserve
go build -o "$WORK/smiload" ./cmd/smiload

echo "== start server (ephemeral port, fresh store) =="
"$WORK/smiserve" \
  -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
  -store "$WORK/store" -max-queued 512 \
  -manifest "$WORK/manifest.json" 2> "$WORK/server.log" &
SERVER_PID=$!

ADDR=
for _ in $(seq 1 100); do
  if [ -s "$WORK/addr" ]; then
    ADDR=$(cat "$WORK/addr")
    if curl -fsS "http://$ADDR/readyz" > /dev/null 2>&1; then
      break
    fi
  fi
  sleep 0.1
done
if [ -z "$ADDR" ] || ! curl -fsS "http://$ADDR/readyz" > /dev/null; then
  echo "server never became ready; log:" >&2
  cat "$WORK/server.log" >&2
  kill "$SERVER_PID" 2> /dev/null || true
  exit 1
fi
echo "   ready at $ADDR"

echo "== cold pass: $N submissions, ${DUP} duplicate mix, $CONCURRENCY concurrent =="
"$WORK/smiload" -addr "$ADDR" -n "$N" -dup "$DUP" -concurrency "$CONCURRENCY" \
  -json > "$WORK/cold.json"

echo "== warm pass: identical spec pool =="
"$WORK/smiload" -addr "$ADDR" -n "$N" -dup "$DUP" -concurrency "$CONCURRENCY" \
  -json > "$WORK/warm.json"

echo "== shut down server (SIGINT) =="
kill -INT "$SERVER_PID"
wait "$SERVER_PID"

echo "== assert the dedup contract =="
python3 - "$WORK/cold.json" "$WORK/warm.json" "$WORK/manifest.json" << 'EOF'
import json, sys

cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
manifest = json.load(open(sys.argv[3]))
failures = []

def check(ok, msg):
    print(("  ok   " if ok else "  FAIL ") + msg)
    if not ok:
        failures.append(msg)

unique = cold["unique_specs"]
executed = cold["cells"]["executed"]
# In-flight duplicates coalesce and repeats replay from the store, so
# executions may not exceed the unique pool (tiny slack for the race
# where a duplicate arrives after its twin completed but before the
# checkpoint... there is none — the store checkpoint happens inside the
# execution — so the bound is exact; keep 5% + 1 headroom anyway so the
# gate fails on regressions, not on future semantic tweaks).
bound = unique * 1.05 + 1
check(executed <= bound, f"cold executed {executed} ≤ {bound:.0f} (unique {unique})")
check(cold["errors"] == 0, f"cold errors == 0 (got {cold['errors']})")
check(cold["cells"]["failed"] == 0, f"cold failed cells == 0 (got {cold['cells']['failed']})")
check(
    cold["sse"]["checked"] == cold["submissions"] and cold["sse"]["ok"] == cold["sse"]["checked"],
    f"cold SSE {cold['sse']['ok']}/{cold['sse']['checked']} of {cold['submissions']} submissions",
)
check(warm["cells"]["executed"] == 0, f"warm executed == 0 (got {warm['cells']['executed']})")
check(warm["errors"] == 0 and warm["cells"]["failed"] == 0, "warm pass clean")
check(
    warm["sse"]["ok"] == warm["submissions"],
    f"warm SSE {warm['sse']['ok']}/{warm['submissions']}",
)

srv = manifest.get("serve") or {}
check(srv.get("submissions", 0) >= cold["submissions"] + warm["submissions"],
      f"manifest serve block counted {srv.get('submissions', 0)} submissions")
check(srv.get("cells", 0) > 0 and srv.get("executed", 0) <= bound,
      f"manifest: {srv.get('executed', 0)} executed of {srv.get('cells', 0)} cells")

if failures:
    sys.exit(1)
EOF

echo "== load proof passed; artifacts in $WORK =="
