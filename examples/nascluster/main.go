// nascluster reproduces a slice of the paper's MPI study: the EP and FT
// benchmarks across cluster sizes under no, short and long SMM
// intervals, showing how synchronization amplifies per-node noise.
package main

import (
	"fmt"
	"log"

	"smistudy"
	"smistudy/internal/metrics"
)

func main() {
	tab := metrics.NewTable("bench", "nodes", "SMM0 (s)", "SMM1 (s)", "SMM2 (s)", "long impact %")
	for _, bench := range []smistudy.Benchmark{smistudy.EP, smistudy.FT} {
		for _, nodes := range []int{1, 4, 16} {
			var secs [3]float64
			for i, lv := range []smistudy.SMMLevel{smistudy.SMM0, smistudy.SMM1, smistudy.SMM2} {
				res, err := smistudy.RunNAS(smistudy.NASOptions{
					Bench: bench, Class: smistudy.ClassA,
					Nodes: nodes, RanksPerNode: 1,
					SMM: lv, Runs: 3,
				})
				if err != nil {
					log.Fatal(err)
				}
				secs[i] = res.Seconds()
			}
			tab.AddRow(string(bench), nodes, secs[0], secs[1], secs[2],
				metrics.PercentChange(secs[0], secs[2]))
		}
	}
	fmt.Println("NAS class A, 1 rank per node, SMIs at 1/second:")
	fmt.Println()
	fmt.Print(tab.String())
	fmt.Println("\nShort SMIs (1-3 ms) barely register; long SMIs (100-110 ms)")
	fmt.Println("cost ≈10% on one node and increasingly more as nodes are added,")
	fmt.Println("because every collective waits for whichever node is stalled.")
	fmt.Println("(FT at 16 nodes is incast-congestion-bound; there, staggering the")
	fmt.Println("ranks can even offset the stalls — see EXPERIMENTS.md.)")
}
