// convolvehtt reproduces the core of the paper's Figure 1: the Convolve
// kernel's sensitivity to SMI frequency and to hyper-threading, for both
// the cache-friendly and cache-unfriendly configurations.
package main

import (
	"fmt"
	"log"

	"smistudy"
	"smistudy/internal/metrics"
)

func main() {
	intervals := []int{0, 1000, 400, 100, 50}
	fmt.Println("Convolve on the simulated PowerEdge R410 (4 cores + HTT), 24 threads")
	fmt.Println()
	for _, beh := range []smistudy.CacheBehavior{smistudy.CacheFriendly, smistudy.CacheUnfriendly} {
		tab := metrics.NewTable("SMI interval", "4 CPUs (s)", "8 CPUs (s)", "HTT gain %")
		for _, iv := range intervals {
			var t4, t8 float64
			for _, cpus := range []int{4, 8} {
				res, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
					Behavior: beh, CPUs: cpus, SMIIntervalMS: iv, Runs: 3, Passes: 15,
				})
				if err != nil {
					log.Fatal(err)
				}
				if cpus == 4 {
					t4 = res.MeanTime.Seconds()
				} else {
					t8 = res.MeanTime.Seconds()
				}
			}
			label := "none"
			if iv > 0 {
				label = fmt.Sprintf("%d ms", iv)
			}
			tab.AddRow(label, t4, t8, (t4/t8-1)*100)
		}
		fmt.Printf("[%v]\n", beh)
		fmt.Print(tab.String())
		fmt.Println()
	}
	fmt.Println("Long SMIs are harmless beyond ~600 ms intervals and dramatic below;")
	fmt.Println("neither configuration gains much from HTT — CF is already efficient,")
	fmt.Println("CU saturates memory bandwidth — matching the paper's findings.")
}
