// detector demonstrates the tooling motivation of the paper: SMIs are
// invisible to the OS, so (1) a spin-loop detector is how tools find
// them, and (2) profilers silently misattribute SMM residency to victim
// tasks.
package main

import (
	"fmt"

	"smistudy"
	"smistudy/internal/sim"
)

func main() {
	fmt.Println("== hwlat-style detection (long SMIs at 1/second) ==")
	rep := smistudy.DetectSMIs(smistudy.DetectOptions{
		Level:         smistudy.SMM2,
		SMIIntervalMS: 1000,
		Duration:      8 * sim.Second,
	})
	fmt.Printf("detected %d gaps; ground truth: %d matched, %d missed, %d false positives\n",
		len(rep.Detections), rep.Matched, rep.Missed, rep.FalsePositives)
	fmt.Printf("largest gap: %v (the SMI handler runs 100-110 ms + rendezvous)\n\n", rep.MaxLatency)

	fmt.Println("== what a profiler would report ==")
	a := smistudy.AttributeNAS(1)
	fmt.Print(a.Table())
	fmt.Println("\nThe kernel charges each task for the wall time it occupied a CPU —")
	fmt.Println("including SMM residency it knows nothing about. 'stolen' is the gap")
	fmt.Println("between that report and the truth; every profiler on the paper's")
	fmt.Println("machines was off by exactly this much.")
}
