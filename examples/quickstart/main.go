// Quickstart: measure what a one-per-second long SMI schedule does to an
// MPI job, in three calls.
package main

import (
	"fmt"
	"log"

	"smistudy"
)

func main() {
	base, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 4, RanksPerNode: 1, SMM: smistudy.SMM0,
	})
	if err != nil {
		log.Fatal(err)
	}

	noisy, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 4, RanksPerNode: 1, SMM: smistudy.SMM2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("EP class A on 4 nodes, 1 rank each\n")
	fmt.Printf("  without SMIs:            %6.2f s\n", base.Seconds())
	fmt.Printf("  with 100-110ms SMIs @1/s: %5.2f s\n", noisy.Seconds())
	fmt.Printf("  slowdown:                %6.1f %%\n",
		(noisy.Seconds()/base.Seconds()-1)*100)
	fmt.Printf("  per-node SMM residency:  %v\n", noisy.Residency)
}
