// rimenergy demonstrates the study's extensions in one run: how an
// SMM-based Runtime Integrity Measurement agent (the paper's motivating
// security use case) perturbs an application, what that costs in energy,
// and what it does to tick-based timekeeping.
package main

import (
	"fmt"
	"log"

	"smistudy"
)

func main() {
	fmt.Println("== RIM agent: 25 MB integrity check per second ==")
	for _, chunkKB := range []int{0, 1024, 64} {
		res, err := smistudy.RunRIM(smistudy.RIMOptions{ChunkKB: chunkKB})
		if err != nil {
			log.Fatal(err)
		}
		label := "whole-measurement SMIs"
		if chunkKB > 0 {
			label = fmt.Sprintf("%d KiB chunks", chunkKB)
		}
		fmt.Printf("  %-24s slowdown %5.1f%%   worst stall %8v   check latency %8v\n",
			label, res.SlowdownPct, res.WorstStall, res.CheckLatency)
	}

	fmt.Println("\n== energy cost of the same work under SMIs at 1/s ==")
	for _, lv := range []smistudy.SMMLevel{smistudy.SMM1, smistudy.SMM2} {
		res, err := smistudy.MeasureEnergy(lv, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v: %.0f J -> %.0f J (+%.1f%% energy, +%.1f%% time)\n",
			lv, res.QuietJoules, res.NoisyJoules, res.EnergyIncreasePct,
			(res.NoisyTime.Seconds()/res.QuietTime.Seconds()-1)*100)
	}

	fmt.Println("\n== tick-clock drift (ticks lost in SMM) ==")
	drift, err := smistudy.MeasureClockDrift(smistudy.SMM2, 1000, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after %v true time, a tick-counted clock shows %v\n", drift.Elapsed, drift.TickTime)
	fmt.Printf("  drift: %v  (%.0f ppm — NTP gives up beyond ~500)\n", drift.Drift, drift.PPM)
}
