// unixbench reproduces the shape of the paper's Figure 2: the UnixBench
// index score against the interval between long SMIs, for several CPU
// configurations.
package main

import (
	"fmt"
	"log"

	"smistudy"
	"smistudy/internal/metrics"
	"smistudy/internal/sim"
)

func main() {
	intervals := []int{100, 600, 1100, 1600}
	cpuConfigs := []int{2, 4, 8}

	ch := metrics.Chart{
		Title:  "UnixBench index score vs time between long SMIs",
		XLabel: "SMI interval (ms)",
		YLabel: "index score",
	}
	for _, cpus := range cpuConfigs {
		s := metrics.Series{Name: fmt.Sprintf("%d CPUs", cpus)}
		for _, iv := range intervals {
			res, err := smistudy.RunUnixBench(smistudy.UnixBenchOptions{
				CPUs: cpus, SMIIntervalMS: iv, Level: smistudy.SMM2,
				Duration: 2 * sim.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
			s.X = append(s.X, float64(iv))
			s.Y = append(s.Y, res.Score)
		}
		ch.Series = append(ch.Series, s)
	}
	fmt.Print(ch.Render())
	fmt.Println("\nHigher is better. Scores converge to their SMI-free levels beyond")
	fmt.Println("~600 ms intervals; below that, long SMIs crater every configuration,")
	fmt.Println("and machines with more cores lose more absolute score.")
}
