package smistudy_test

import (
	"math"
	"testing"

	"smistudy"
	"smistudy/internal/paperdata"
)

// Reproduction gates: these tests assert, against the paper's published
// numbers (internal/paperdata), the properties EXPERIMENTS.md claims.
// They are the repository's contract: if a model change breaks a
// reproduced shape, these fail.

func runCell(t *testing.T, bench smistudy.Benchmark, class smistudy.Class, nodes, rpn int, lv smistudy.SMMLevel) float64 {
	t.Helper()
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: bench, Class: class, Nodes: nodes, RanksPerNode: rpn,
		SMM: lv, Runs: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Seconds()
}

// Every EP cell: baseline within 10% of the paper and long-SMM impact in
// the same direction.
func TestReproductionEPAgainstPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full EP grid")
	}
	for _, c := range paperdata.Tables1to3 {
		if c.Bench != "EP" || c.Class == 'C' {
			continue // class C adds minutes without new information
		}
		base := runCell(t, smistudy.EP, smistudy.Class(c.Class), c.Nodes, c.RanksPerNode, smistudy.SMM0)
		long := runCell(t, smistudy.EP, smistudy.Class(c.Class), c.Nodes, c.RanksPerNode, smistudy.SMM2)
		if math.Abs(base-c.SMM0)/c.SMM0 > 0.10 {
			t.Errorf("EP.%c %d×%d baseline %.2f vs paper %.2f", c.Class, c.Nodes, c.RanksPerNode, base, c.SMM0)
		}
		ourPct := (long - base) / base * 100
		if ourPct < 5 {
			t.Errorf("EP.%c %d×%d long impact %.1f%%, paper %.1f%% — direction lost", c.Class, c.Nodes, c.RanksPerNode, ourPct, c.PctLong())
		}
	}
}

// The paper's single-node 10-11% long-SMM floor must hold for all three
// benchmarks.
func TestReproductionSingleNodeFloor(t *testing.T) {
	for _, bench := range []smistudy.Benchmark{smistudy.EP, smistudy.BT, smistudy.FT} {
		base := runCell(t, bench, smistudy.ClassA, 1, 1, smistudy.SMM0)
		long := runCell(t, bench, smistudy.ClassA, 1, 1, smistudy.SMM2)
		pct := (long - base) / base * 100
		if pct < 9 || pct > 13 {
			t.Errorf("%s.A single-node long impact %.1f%%, want ≈10.7%%", bench, pct)
		}
		short := runCell(t, bench, smistudy.ClassA, 1, 1, smistudy.SMM1)
		if sp := (short - base) / base * 100; sp > 2 {
			t.Errorf("%s.A single-node short impact %.1f%%, want <2%%", bench, sp)
		}
	}
}

// Long-SMM impact must grow with node count for the synchronizing codes
// (the paper's central MPI observation).
func TestReproductionImpactGrowsWithNodes(t *testing.T) {
	for _, bench := range []smistudy.Benchmark{smistudy.EP, smistudy.BT} {
		impact := func(nodes int) float64 {
			base := runCell(t, bench, smistudy.ClassA, nodes, 1, smistudy.SMM0)
			long := runCell(t, bench, smistudy.ClassA, nodes, 1, smistudy.SMM2)
			return (long - base) / base * 100
		}
		one := impact(1)
		sixteen := impact(16)
		if sixteen <= one {
			t.Errorf("%s.A long impact did not grow: 1 node %.1f%%, 16 nodes %.1f%%", bench, one, sixteen)
		}
	}
}

// Paper baselines for calibrated single-rank cells must match closely
// (these are calibration identities; breaking them means the params
// drifted).
func TestReproductionCalibratedBaselines(t *testing.T) {
	for _, c := range []struct {
		bench smistudy.Benchmark
		class smistudy.Class
		tol   float64
	}{
		{smistudy.EP, smistudy.ClassA, 0.02},
		{smistudy.EP, smistudy.ClassB, 0.02},
		{smistudy.BT, smistudy.ClassA, 0.02},
		{smistudy.FT, smistudy.ClassA, 0.10},
	} {
		p := paperdata.Find(string(c.bench), byte(c.class), 1, 1)
		if p == nil {
			t.Fatalf("no paper cell for %s.%c", c.bench, c.class)
		}
		got := runCell(t, c.bench, c.class, 1, 1, smistudy.SMM0)
		if math.Abs(got-p.SMM0)/p.SMM0 > c.tol {
			t.Errorf("%s.%c solo baseline %.2f vs paper %.2f (tol %.0f%%)",
				c.bench, c.class, got, p.SMM0, c.tol*100)
		}
	}
}
