package smistudy_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"smistudy"
	"smistudy/internal/sim"
)

func TestRunRIMWholeChecks(t *testing.T) {
	res, err := smistudy.RunRIM(smistudy.RIMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowdownPct < 5 || res.SlowdownPct > 20 {
		t.Fatalf("RIM slowdown %.1f%%, want ≈10%% (100ms checks at 1/s)", res.SlowdownPct)
	}
	if res.Checks < 3 {
		t.Fatalf("checks = %d", res.Checks)
	}
	if res.WorstStall < 100*sim.Millisecond {
		t.Fatalf("worst stall %v, want ≥100ms for 25MB whole checks", res.WorstStall)
	}
}

func TestRunRIMChunkedBoundsStalls(t *testing.T) {
	whole, err := smistudy.RunRIM(smistudy.RIMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := smistudy.RunRIM(smistudy.RIMOptions{ChunkKB: 256})
	if err != nil {
		t.Fatal(err)
	}
	if chunked.WorstStall >= whole.WorstStall/10 {
		t.Fatalf("chunking: worst stall %v vs whole %v", chunked.WorstStall, whole.WorstStall)
	}
	if chunked.CheckLatency <= whole.CheckLatency {
		t.Fatal("chunked checks should take longer end-to-end")
	}
}

func TestRunRIMValidation(t *testing.T) {
	if _, err := smistudy.RunRIM(smistudy.RIMOptions{ChunkKB: -1}); err == nil {
		t.Fatal("negative chunk accepted")
	}
}

func TestMeasureEnergy(t *testing.T) {
	res, err := smistudy.MeasureEnergy(smistudy.SMM2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyIncreasePct <= 0 {
		t.Fatalf("long SMIs should raise energy for equal work: %+v", res)
	}
	if res.NoisyTime <= res.QuietTime {
		t.Fatal("long SMIs should lengthen the run")
	}
	short, err := smistudy.MeasureEnergy(smistudy.SMM1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if short.EnergyIncreasePct >= res.EnergyIncreasePct {
		t.Fatalf("short SMIs (%.2f%%) should cost less energy than long (%.2f%%)",
			short.EnergyIncreasePct, res.EnergyIncreasePct)
	}
}

func TestMeasureClockDrift(t *testing.T) {
	res, err := smistudy.MeasureClockDrift(smistudy.SMM2, 1000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift <= 0 {
		t.Fatal("no drift under long SMIs")
	}
	if res.TickTime+res.Drift != res.Elapsed {
		t.Fatal("drift arithmetic inconsistent")
	}
	// ~105ms lost per ~1.1s → ≈95,000 ppm.
	if res.PPM < 50_000 || res.PPM > 150_000 {
		t.Fatalf("drift = %.0f ppm, want ≈95k", res.PPM)
	}
	quiet, err := smistudy.MeasureClockDrift(smistudy.SMM0, 1000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Drift != 0 {
		t.Fatal("drift without SMIs")
	}
}

func TestProfileWorkloadModes(t *testing.T) {
	drop := smistudy.ProfileWorkload(smistudy.ProfilerDropInSMM, 1)
	if drop.Lost == 0 {
		t.Fatal("drop mode lost no samples under long SMIs")
	}
	deferRep := smistudy.ProfileWorkload(smistudy.ProfilerDeferToExit, 1)
	if deferRep.Deferred == 0 {
		t.Fatal("defer mode deferred no samples")
	}
	if len(drop.Tasks) != 2 || len(deferRep.Tasks) != 2 {
		t.Fatal("profiles missing tasks")
	}
}

func TestTraceWorkload(t *testing.T) {
	data, err := smistudy.TraceWorkload(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	labels := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			labels[ev["name"].(string)] = true
		}
	}
	if !labels["smm"] {
		t.Error("trace missing SMM episodes")
	}
	for i := 0; i < 4; i++ {
		if !labels[fmt.Sprintf("task%d", i)] {
			t.Errorf("trace missing task%d", i)
		}
	}
}
