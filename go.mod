module smistudy

go 1.22
