package smistudy

import (
	"smistudy/internal/perturb"
	"smistudy/internal/proftool"
	"smistudy/internal/runner"
)

// This file exposes the study's extensions: the RIM (security
// introspection) workload that motivates the paper, the energy and
// timekeeping effects established by the prior work it builds on
// (Delgado & Karavanic, IISWC'13), and the profiler-skew demonstration
// aimed at tool developers. Like the main facade, every entry point
// delegates to internal/runner's single provisioning path.

// JitterConfig re-exports the perturbation layer's OS-jitter source
// configuration, so callers can provision osjitter noise through the
// typed entry points (NASOptions.Jitter, ConvolveOptions.Jitter, ...).
type JitterConfig = perturb.JitterConfig

// RIMOptions configures an integrity-measurement interference run.
type RIMOptions = runner.RIMOptions

// RIMResult quantifies the interference of an integrity agent.
type RIMResult = runner.RIMResult

// RunRIM measures how an SMM-based integrity agent perturbs a
// multithreaded compute application on the R410-class machine.
func RunRIM(o RIMOptions) (RIMResult, error) { return runner.RunRIM(o) }

// EnergyResult quantifies SMM's energy cost for a fixed amount of work.
type EnergyResult = runner.EnergyResult

// MeasureEnergy reproduces the prior work's finding that SMIs increase
// the energy needed to complete the same work (one-per-second injection
// of the given level, R410 node, four-way compute).
func MeasureEnergy(level SMMLevel, seed int64) (EnergyResult, error) {
	return runner.MeasureEnergy(level, seed)
}

// DriftResult quantifies tick-clock drift under SMIs.
type DriftResult = runner.DriftResult

// MeasureClockDrift runs an idle machine under the given injection for
// `seconds` and reports how far a tick-counted wall clock falls behind —
// the prior work's "time scaling discrepancy".
func MeasureClockDrift(level SMMLevel, intervalMS int, seconds float64, seed int64) (DriftResult, error) {
	return runner.MeasureClockDrift(level, intervalMS, seconds, seed)
}

// TraceWorkload runs a four-task compute workload under 1/s long SMIs
// for `seconds` and returns a Chrome trace-event JSON
// (chrome://tracing, Perfetto) with one track per task plus the SMM
// episodes — the invisible interrupts, made visible on a timeline. The
// timeline is captured live on the observability bus (scheduler, SMM
// and profiler events included), not reconstructed after the fact; a
// defer-to-exit sampling profiler rides along so its kept/deferred
// decisions appear on their own track.
func TraceWorkload(seconds float64, seed int64) ([]byte, error) {
	return runner.TraceWorkload(seconds, seed)
}

// ProfilerMode re-exports the sampling-profiler SMM handling modes.
type ProfilerMode = proftool.Mode

// Profiler modes.
const (
	ProfilerDropInSMM   = proftool.DropInSMM
	ProfilerDeferToExit = proftool.DeferToExit
)

// ProfileWorkload runs a skewed two-task workload under long SMIs with a
// sampling profiler in the given mode and returns the profiler's report
// (including sample loss and worst-case share skew vs ground truth).
func ProfileWorkload(mode ProfilerMode, seed int64) proftool.Report {
	return runner.ProfileWorkload(mode, seed)
}
