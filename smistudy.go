// Package smistudy reproduces "The Effects of System Management
// Interrupts on Multithreaded, Hyper-threaded, and MPI Applications"
// (Macarenco, Frye, Hamlin, Karavanic — ICPP 2016) as a simulation study.
//
// System Management Interrupts cannot be injected portably — the paper
// used a BIOS-level driver on dedicated x86 hardware — so this library
// rebuilds the whole experimental platform as a deterministic
// discrete-event simulation: multicore nodes with hyper-threading and
// shared caches, a minimal operating system, SMM machinery with a
// Blackbox-style SMI driver, a gigabit-class cluster fabric, an MPI
// runtime, and the paper's workloads (NAS EP/BT/FT skeletons, the
// Convolve kernel, UnixBench models).
//
// The package exposes one entry point per study:
//
//   - RunNAS — the MPI experiments behind Tables 1–5.
//   - RunConvolve — the multithreaded experiments behind Figure 1.
//   - RunUnixBench — the POSIX benchmark experiments behind Figure 2.
//   - DetectSMIs — the hwlat-style detection tooling from §II.
//   - AttributeNAS — the time-misattribution demonstration from §II.
//
// Every run is deterministic for a given seed; the paper's six-run
// averages are reproduced by averaging seeds 1..6.
//
// This package is a facade: every entry point is an alias for — or a
// one-line delegation to — internal/runner, the single
// engine-provisioning path shared with the declarative scenario layer
// (internal/scenario) and every CLI. New studies can therefore run
// from a JSON spec file (smisim -scenario) with no new Go code.
package smistudy

import (
	"smistudy/internal/faults"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/noise"
	"smistudy/internal/obs"
	"smistudy/internal/runner"
	"smistudy/internal/smm"
	"smistudy/internal/trace"
)

// ErrPeerUnreachable is returned (wrapped) by RunNAS when the MPI
// retransmission protocol gives up on a dead or partitioned peer.
var ErrPeerUnreachable = mpi.ErrPeerUnreachable

// NoProgressError re-exports the MPI watchdog's per-rank blocked-state
// report; retrieve it from a RunNAS error with errors.As.
type NoProgressError = mpi.NoProgressError

// FaultSchedule re-exports the fault timeline type for callers who want
// scenarios beyond what FaultPlan describes.
type FaultSchedule = faults.Schedule

// Tracer re-exports the observability event consumer. Attach an
// *obs.Bus (metrics + sinks) or any custom sink via the Tracer field of
// the option structs; a nil Tracer costs nothing — every emit site is a
// single nil check and the simulation hot path stays allocation-free.
type Tracer = obs.Tracer

// SMMLevel selects the SMI injection level, exactly as in the paper:
// SMM0 = none, SMM1 = short (1–3 ms), SMM2 = long (100–110 ms), fired
// once per second in the MPI study.
type SMMLevel = smm.Level

// Injection levels.
const (
	SMM0 = smm.SMMNone
	SMM1 = smm.SMMShort
	SMM2 = smm.SMMLong
)

// Benchmark re-exports the NAS benchmark name type.
type Benchmark = nas.Benchmark

// Class re-exports the NPB problem class type.
type Class = nas.Class

// NAS benchmarks and classes from the paper.
const (
	EP = nas.EP
	BT = nas.BT
	FT = nas.FT

	ClassS = nas.ClassS
	ClassA = nas.ClassA
	ClassB = nas.ClassB
	ClassC = nas.ClassC
)

// FaultPlan re-exports the runner's fault scenario description: each
// fault is enabled by its probability or start time, and the zero plan
// injects nothing. Scenarios beyond this shape can be built directly
// with FaultSchedule and the internal cluster API.
type FaultPlan = runner.FaultPlan

// NASOptions configures one cell of the paper's MPI study.
type NASOptions = runner.NASOptions

// NASResult is a measured cell.
type NASResult = runner.NASResult

// RunNAS executes one configuration of the MPI study.
func RunNAS(o NASOptions) (NASResult, error) { return runner.RunNAS(o) }

// CacheBehavior selects a Convolve configuration.
type CacheBehavior = runner.CacheBehavior

// The paper's two Convolve configurations.
const (
	CacheFriendly   = runner.CacheFriendly
	CacheUnfriendly = runner.CacheUnfriendly
)

// ConvolveOptions configures one Convolve run (Figure 1).
type ConvolveOptions = runner.ConvolveOptions

// ConvolveResult is one measured Convolve point.
type ConvolveResult = runner.ConvolveResult

// RunConvolve executes one Convolve configuration.
func RunConvolve(o ConvolveOptions) (ConvolveResult, error) { return runner.RunConvolve(o) }

// UnixBenchOptions configures one UnixBench iteration (Figure 2).
type UnixBenchOptions = runner.UnixBenchOptions

// UnixBenchResult is one iteration's scores.
type UnixBenchResult = runner.UnixBenchResult

// RunUnixBench executes one UnixBench iteration.
func RunUnixBench(o UnixBenchOptions) (UnixBenchResult, error) { return runner.RunUnixBench(o) }

// DetectOptions configures the SMI detector demonstration.
type DetectOptions = runner.DetectOptions

// DetectSMIs runs the hwlat-style spin-loop detector on a machine with
// the given injection and scores it against ground truth.
func DetectSMIs(o DetectOptions) noise.DetectorReport { return runner.DetectSMIs(o) }

// AttributeNAS runs an EP-style workload under long SMIs and reports the
// per-task time misattribution a profiler would commit (§II's warning to
// tool developers).
func AttributeNAS(seed int64) trace.Attribution { return runner.AttributeNAS(seed) }
