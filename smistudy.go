// Package smistudy reproduces "The Effects of System Management
// Interrupts on Multithreaded, Hyper-threaded, and MPI Applications"
// (Macarenco, Frye, Hamlin, Karavanic — ICPP 2016) as a simulation study.
//
// System Management Interrupts cannot be injected portably — the paper
// used a BIOS-level driver on dedicated x86 hardware — so this library
// rebuilds the whole experimental platform as a deterministic
// discrete-event simulation: multicore nodes with hyper-threading and
// shared caches, a minimal operating system, SMM machinery with a
// Blackbox-style SMI driver, a gigabit-class cluster fabric, an MPI
// runtime, and the paper's workloads (NAS EP/BT/FT skeletons, the
// Convolve kernel, UnixBench models).
//
// The package exposes one entry point per study:
//
//   - RunNAS — the MPI experiments behind Tables 1–5.
//   - RunConvolve — the multithreaded experiments behind Figure 1.
//   - RunUnixBench — the POSIX benchmark experiments behind Figure 2.
//   - DetectSMIs — the hwlat-style detection tooling from §II.
//   - AttributeNAS — the time-misattribution demonstration from §II.
//
// Every run is deterministic for a given seed; the paper's six-run
// averages are reproduced by averaging seeds 1..6.
package smistudy

import (
	"context"
	"fmt"

	"smistudy/internal/cluster"
	"smistudy/internal/convolve"
	"smistudy/internal/faults"
	"smistudy/internal/kernel"
	"smistudy/internal/metrics"
	"smistudy/internal/mpi"
	"smistudy/internal/nas"
	"smistudy/internal/noise"
	"smistudy/internal/obs"
	"smistudy/internal/parsweep"
	"smistudy/internal/sim"
	"smistudy/internal/smm"
	"smistudy/internal/trace"
	"smistudy/internal/ubench"
)

// ErrPeerUnreachable is returned (wrapped) by RunNAS when the MPI
// retransmission protocol gives up on a dead or partitioned peer.
var ErrPeerUnreachable = mpi.ErrPeerUnreachable

// NoProgressError re-exports the MPI watchdog's per-rank blocked-state
// report; retrieve it from a RunNAS error with errors.As.
type NoProgressError = mpi.NoProgressError

// FaultSchedule re-exports the fault timeline type for callers who want
// scenarios beyond what FaultPlan describes.
type FaultSchedule = faults.Schedule

// Tracer re-exports the observability event consumer. Attach an
// *obs.Bus (metrics + sinks) or any custom sink via the Tracer field of
// the option structs; a nil Tracer costs nothing — every emit site is a
// single nil check and the simulation hot path stays allocation-free.
type Tracer = obs.Tracer

// wireRun scopes tr to one sweep cell and threads it through a freshly
// built engine and cluster: all SMM, scheduler, network and fault events
// flow to it stamped with the run index, and — when tr is a bus — the
// engine's event counters feed its registry. Returns the scoped tracer
// for the caller's own emissions (nil stays nil).
func wireRun(tr Tracer, run int, e *sim.Engine, cl *cluster.Cluster) Tracer {
	if tr == nil {
		return nil
	}
	if b, ok := tr.(*obs.Bus); ok {
		e.SetProbe(b)
	}
	rt := obs.WithRun(tr, int32(run))
	cl.SetTracer(rt)
	return rt
}

// cellStart marks a sweep cell's beginning on the bus; seed identifies
// the cell in the trace.
func cellStart(rt Tracer, seed int64) {
	if rt != nil {
		rt.Emit(obs.Event{Type: obs.EvSweepCellStart, Node: -1, A: seed})
	}
}

// cellFinish marks a sweep cell's end; the span covers the whole run.
func cellFinish(rt Tracer, e *sim.Engine, seed int64) {
	if rt != nil {
		rt.Emit(obs.Event{Time: e.Now(), Dur: e.Now(), Type: obs.EvSweepCellFinish, Node: -1, A: seed})
	}
}

// SMMLevel selects the SMI injection level, exactly as in the paper:
// SMM0 = none, SMM1 = short (1–3 ms), SMM2 = long (100–110 ms), fired
// once per second in the MPI study.
type SMMLevel = smm.Level

// Injection levels.
const (
	SMM0 = smm.SMMNone
	SMM1 = smm.SMMShort
	SMM2 = smm.SMMLong
)

// Benchmark re-exports the NAS benchmark name type.
type Benchmark = nas.Benchmark

// Class re-exports the NPB problem class type.
type Class = nas.Class

// NAS benchmarks and classes from the paper.
const (
	EP = nas.EP
	BT = nas.BT
	FT = nas.FT

	ClassS = nas.ClassS
	ClassA = nas.ClassA
	ClassB = nas.ClassB
	ClassC = nas.ClassC
)

// FaultPlan describes the fault scenario of a NAS run. Each fault is
// enabled by its probability or start time: LossProb > 0 arms uniform
// message loss, CrashAt/HangAt/StormAt/DegradeAt > 0 arm the
// corresponding node fault at that simulated time. The zero plan
// injects nothing. Scenarios beyond this shape can be built directly
// with FaultSchedule and the internal cluster API.
type FaultPlan struct {
	// LossProb drops every fabric message with this probability.
	LossProb float64

	// CrashAt > 0 crashes CrashNode at that time, permanently: CPUs
	// halt, the SMI driver disarms, all its traffic is lost.
	CrashNode int
	CrashAt   sim.Time

	// HangAt > 0 hangs HangNode for HangFor (0 = forever): CPUs halt
	// but the node stays on the fabric and still acknowledges.
	HangNode int
	HangAt   sim.Time
	HangFor  sim.Time

	// StormAt > 0 reconfigures StormNode's SMI driver to one short SMI
	// every StormPeriodJiffies jiffies (0 = 10) for StormFor.
	StormNode          int
	StormAt            sim.Time
	StormFor           sim.Time
	StormPeriodJiffies uint64

	// DegradeAt > 0 degrades all traffic into DegradeNode for
	// DegradeFor: serialization × DegradeSlow plus DegradeLatency.
	DegradeNode    int
	DegradeAt      sim.Time
	DegradeFor     sim.Time
	DegradeSlow    float64
	DegradeLatency sim.Time
}

// Schedule lowers the plan to a fault timeline.
func (p FaultPlan) Schedule() faults.Schedule {
	var s faults.Schedule
	if p.LossProb > 0 {
		s.Add(faults.UniformLoss(p.LossProb))
	}
	if p.CrashAt > 0 {
		s.Add(faults.CrashAt(p.CrashNode, p.CrashAt))
	}
	if p.HangAt > 0 {
		s.Add(faults.HangAt(p.HangNode, p.HangAt, p.HangFor))
	}
	if p.StormAt > 0 {
		s.Add(faults.StormAt(p.StormNode, p.StormAt, p.StormFor, p.StormPeriodJiffies))
	}
	if p.DegradeAt > 0 {
		s.Add(faults.DegradeNodeLinks(p.DegradeNode, p.DegradeAt, p.DegradeFor, p.DegradeSlow, p.DegradeLatency))
	}
	return s
}

// Active reports whether the plan injects anything.
func (p FaultPlan) Active() bool { return !p.Schedule().Empty() }

// NASOptions configures one cell of the paper's MPI study.
type NASOptions struct {
	Bench        Benchmark
	Class        Class
	Nodes        int // cluster nodes (paper: 1–16)
	RanksPerNode int // 1 or 4 in the paper
	HTT          bool
	SMM          SMMLevel
	// Runs averages this many runs with seeds Seed, Seed+1, ... (paper:
	// six). Zero means one.
	Runs int
	Seed int64
	// Workers fans the independent runs over this many OS threads
	// (each run has its own simulation engine). ≤ 1 runs sequentially;
	// any value yields bit-identical results.
	Workers int
	// Faults, when non-nil and active, arms the fault scenario on every
	// run. A plan that can lose messages automatically switches the MPI
	// runtime to its reliable (ack/retransmit) transport, and the
	// progress watchdog is armed so faulted runs fail in bounded
	// simulated time instead of hanging.
	Faults *FaultPlan
	// Watchdog overrides the MPI progress-watchdog interval (zero =
	// default, negative = disabled).
	Watchdog sim.Time
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 — a
	// deliberate physics perturbation for sensitivity studies and for
	// the fidelity harness's negative tests. Zero leaves the paper's
	// calibrated durations untouched.
	SMIScale float64
	// Tracer, when non-nil, receives every observability event from
	// every run (SMM episodes, scheduling, MPI traffic, network drops,
	// fault activations), each stamped with its run index. Safe with
	// Workers > 1 when the tracer is an *obs.Bus or otherwise
	// concurrency-safe.
	Tracer Tracer
}

// NASResult is a measured cell.
type NASResult struct {
	Options   NASOptions
	Ranks     int
	MeanTime  sim.Time
	Times     []sim.Time
	MOPs      float64 // from the mean time
	Verified  bool
	Residency sim.Time // mean per-node SMM residency per run

	// Fault-scenario accounting, summed over runs: messages the fabric
	// dropped and the reliable transport's recovery activity.
	Dropped     int64
	Retransmits int64
	Duplicates  int64
}

// Seconds is shorthand for MeanTime in seconds.
func (r NASResult) Seconds() float64 { return r.MeanTime.Seconds() }

// RunNAS executes one configuration of the MPI study.
func RunNAS(o NASOptions) (NASResult, error) {
	if o.Nodes <= 0 || o.RanksPerNode <= 0 {
		return NASResult{}, fmt.Errorf("smistudy: need Nodes and RanksPerNode ≥ 1")
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	var sched faults.Schedule
	if o.Faults != nil {
		sched = o.Faults.Schedule()
	}
	par := mpi.DefaultParams()
	if sched.Lossy() {
		par = mpi.ReliableParams()
	}
	par.Watchdog = o.Watchdog
	// Each run owns a fresh engine and cluster, so runs are fanned over
	// o.Workers threads and folded back in input order — byte-identical
	// to the sequential loop this replaces. Errors ride inside the
	// per-run output (never through the pool) so a failed run's
	// transport accounting is still folded in, exactly as before.
	type runOut struct {
		setupErr error
		runErr   error
		ranks    int
		time     sim.Time
		verified bool
		resid    sim.Time

		dropped, retransmits, duplicates int64
	}
	idx := make([]int, runs)
	for i := range idx {
		idx[i] = i
	}
	outs, _ := parsweep.Run(context.Background(), idx, o.Workers, func(i int) (runOut, error) {
		var out runOut
		e := sim.New(seed + int64(i))
		cp := cluster.Wyeast(o.Nodes, o.HTT, o.SMM)
		cp.Node.SMI.DurationScale = o.SMIScale
		cl, err := cluster.New(e, cp)
		if err != nil {
			out.setupErr = err
			return out, nil
		}
		rt := wireRun(o.Tracer, i, e, cl)
		cellStart(rt, seed+int64(i))
		cl.StartSMI()
		w, err := mpi.NewWorld(cl, o.RanksPerNode, par)
		if err != nil {
			out.setupErr = err
			return out, nil
		}
		w.SetTracer(rt)
		if !sched.Empty() {
			inj, err := cl.Inject(sched)
			if err != nil {
				out.setupErr = err
				return out, nil
			}
			w.SetFaultObserver(inj)
		}
		r, runErr := nas.Run(w, nas.Spec{Bench: o.Bench, Class: o.Class})
		cellFinish(rt, e, seed+int64(i))
		// Transport accounting is valid even for a failed run — report
		// how much recovery work preceded the failure.
		out.dropped = cl.Fabric.Stats().Drops
		ts := w.TransportStats()
		out.retransmits = ts.Retransmits
		out.duplicates = ts.Duplicates
		out.runErr = runErr
		if runErr == nil {
			out.ranks = r.Ranks
			out.time = r.Time
			out.verified = r.Verified
			out.resid = cl.TotalSMMResidency() / sim.Time(len(cl.Nodes))
		}
		return out, nil
	})
	res := NASResult{Options: o, Verified: true}
	var stream metrics.Stream
	var residency sim.Time
	for _, out := range outs {
		if out.setupErr != nil {
			return NASResult{}, out.setupErr
		}
		res.Dropped += out.dropped
		res.Retransmits += out.retransmits
		res.Duplicates += out.duplicates
		if out.runErr != nil {
			return res, out.runErr
		}
		res.Ranks = out.ranks
		res.Times = append(res.Times, out.time)
		res.Verified = res.Verified && out.verified
		stream.Add(out.time.Seconds())
		residency += out.resid
	}
	res.MeanTime = sim.FromSeconds(stream.Mean())
	res.Residency = residency / sim.Time(runs)
	res.MOPs = nasMOPs(o.Bench, o.Class, stream.Mean())
	return res, nil
}

// nasMOPs converts a runtime into model MOPs for the spec.
func nasMOPs(b Benchmark, c Class, seconds float64) float64 {
	ops := nas.TotalOps(nas.Spec{Bench: b, Class: c})
	if ops == 0 || seconds <= 0 {
		return 0
	}
	return ops / 1e6 / seconds
}

// CacheBehavior selects a Convolve configuration.
type CacheBehavior int

// The paper's two Convolve configurations.
const (
	CacheFriendly CacheBehavior = iota
	CacheUnfriendly
)

// String implements fmt.Stringer.
func (c CacheBehavior) String() string {
	if c == CacheFriendly {
		return "CacheFriendly"
	}
	return "CacheUnfriendly"
}

// ConvolveOptions configures one Convolve run (Figure 1).
type ConvolveOptions struct {
	Behavior CacheBehavior
	CPUs     int // online logical CPUs, 1–8
	// SMIIntervalMS is the gap between long SMIs in milliseconds
	// (paper: 50–1500); zero disables injection.
	SMIIntervalMS int
	// Runs averages this many runs (paper: three). Zero means one.
	Runs   int
	Seed   int64
	Passes int // repetitions of the convolution; zero = preset default
	// Workers fans the independent runs over this many OS threads;
	// ≤ 1 runs sequentially. Results are bit-identical either way.
	Workers int
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 (see
	// NASOptions.SMIScale).
	SMIScale float64
	// Tracer, when non-nil, receives every run's observability events,
	// stamped with the run index. Must be concurrency-safe (an
	// *obs.Bus is) when Workers > 1.
	Tracer Tracer
}

// ConvolveResult is one measured Convolve point.
type ConvolveResult struct {
	Options  ConvolveOptions
	MeanTime sim.Time
	Times    []sim.Time
	StdDev   sim.Time // across runs
	Threads  int
}

// RunConvolve executes one Convolve configuration.
func RunConvolve(o ConvolveOptions) (ConvolveResult, error) {
	if o.CPUs < 1 || o.CPUs > 8 {
		return ConvolveResult{}, fmt.Errorf("smistudy: Convolve CPUs = %d, want 1–8", o.CPUs)
	}
	cfg := convolve.CacheFriendly()
	if o.Behavior == CacheUnfriendly {
		cfg = convolve.CacheUnfriendly()
	}
	if o.Passes > 0 {
		cfg.Passes = o.Passes
	}
	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	smi := smm.DriverConfig{}
	if o.SMIIntervalMS > 0 {
		smi = smm.DriverConfig{
			Level:         smm.SMMLong,
			PeriodJiffies: uint64(o.SMIIntervalMS),
			DurationScale: o.SMIScale,
			PhaseJitter:   true,
		}
	}
	// Independent engines per run: fan over o.Workers threads, fold in
	// input order — identical to the sequential loop for any worker
	// count.
	type runOut struct {
		elapsed sim.Time
		threads int
	}
	idx := make([]int, runs)
	for i := range idx {
		idx[i] = i
	}
	outs, err := parsweep.Run(context.Background(), idx, o.Workers, func(i int) (runOut, error) {
		e := sim.New(seed + int64(i))
		cl, err := cluster.New(e, cluster.R410(smi))
		if err != nil {
			return runOut{}, err
		}
		if err := cl.Nodes[0].Kernel.OnlineCPUs(o.CPUs); err != nil {
			return runOut{}, err
		}
		rt := wireRun(o.Tracer, i, e, cl)
		cellStart(rt, seed+int64(i))
		cl.StartSMI()
		r := convolve.RunSim(cl, cfg)
		cellFinish(rt, e, seed+int64(i))
		return runOut{elapsed: r.Elapsed, threads: r.Threads}, nil
	})
	if err != nil {
		return ConvolveResult{}, err
	}
	res := ConvolveResult{Options: o}
	var stream metrics.Stream
	for _, out := range outs {
		res.Times = append(res.Times, out.elapsed)
		res.Threads = out.threads
		stream.Add(out.elapsed.Seconds())
	}
	res.MeanTime = sim.FromSeconds(stream.Mean())
	res.StdDev = sim.FromSeconds(stream.StdDev())
	return res, nil
}

// UnixBenchOptions configures one UnixBench iteration (Figure 2).
type UnixBenchOptions struct {
	CPUs int // online logical CPUs, 1–8
	// SMIIntervalMS is the gap between SMIs in ms; zero disables.
	SMIIntervalMS int
	Level         SMMLevel // SMM1 or SMM2 when injecting
	Seed          int64
	// Duration per micro-benchmark window; zero = 4 s.
	Duration sim.Time
	// SMIScale multiplies the SMI duration range when > 0 and ≠ 1 (see
	// NASOptions.SMIScale).
	SMIScale float64
	// Tracer, when non-nil, receives the run's observability events.
	Tracer Tracer
}

// UnixBenchResult is one iteration's scores.
type UnixBenchResult struct {
	Options UnixBenchOptions
	Score   float64
	Tests   []ubench.TestScore
}

// RunUnixBench executes one UnixBench iteration.
func RunUnixBench(o UnixBenchOptions) (UnixBenchResult, error) {
	if o.CPUs < 1 || o.CPUs > 8 {
		return UnixBenchResult{}, fmt.Errorf("smistudy: UnixBench CPUs = %d, want 1–8", o.CPUs)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	smi := smm.DriverConfig{}
	if o.SMIIntervalMS > 0 && o.Level != smm.SMMNone {
		smi = smm.DriverConfig{
			Level:         o.Level,
			PeriodJiffies: uint64(o.SMIIntervalMS),
			DurationScale: o.SMIScale,
			PhaseJitter:   true,
		}
	}
	e := sim.New(seed)
	cl, err := cluster.New(e, cluster.R410(smi))
	if err != nil {
		return UnixBenchResult{}, err
	}
	if err := cl.Nodes[0].Kernel.OnlineCPUs(o.CPUs); err != nil {
		return UnixBenchResult{}, err
	}
	rt := wireRun(o.Tracer, 0, e, cl)
	cellStart(rt, seed)
	cl.StartSMI()
	cfg := ubench.DefaultConfig()
	if o.Duration > 0 {
		cfg.Duration = o.Duration
	}
	r := ubench.Run(cl, cfg)
	cellFinish(rt, e, seed)
	return UnixBenchResult{Options: o, Score: r.Score, Tests: r.Tests}, nil
}

// DetectOptions configures the SMI detector demonstration.
type DetectOptions struct {
	Level         SMMLevel
	SMIIntervalMS int
	Duration      sim.Time
	Seed          int64
	// Tracer, when non-nil, receives the run's observability events —
	// notably the ground-truth SMM episodes, which cmd/smidetect
	// overlays against the detector's findings.
	Tracer Tracer
}

// DetectSMIs runs the hwlat-style spin-loop detector on a machine with
// the given injection and scores it against ground truth.
func DetectSMIs(o DetectOptions) noise.DetectorReport {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	interval := o.SMIIntervalMS
	if interval <= 0 {
		interval = 1000
	}
	smi := smm.DriverConfig{}
	if o.Level != smm.SMMNone {
		smi = smm.DriverConfig{Level: o.Level, PeriodJiffies: uint64(interval), PhaseJitter: true}
	}
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.R410(smi))
	wireRun(o.Tracer, 0, e, cl)
	cl.StartSMI()
	return noise.RunDetector(cl, noise.DetectorConfig{Duration: o.Duration})
}

// AttributeNAS runs an EP-style workload under long SMIs and reports the
// per-task time misattribution a profiler would commit (§II's warning to
// tool developers).
func AttributeNAS(seed int64) trace.Attribution {
	if seed == 0 {
		seed = 1
	}
	e := sim.New(seed)
	cl := cluster.MustNew(e, cluster.Wyeast(1, false, smm.SMMLong))
	cl.StartSMI()
	node := cl.Nodes[0]
	var tasks []*kernel.Task
	remaining := 4
	for i := 0; i < 4; i++ {
		tasks = append(tasks, node.Kernel.Spawn(fmt.Sprintf("rank%d", i), nas.Profile(nas.EP), func(t *kernel.Task) {
			t.Compute(1e10)
			remaining--
			if remaining == 0 {
				cl.Eng.Stop()
			}
		}))
	}
	cl.Eng.Run()
	return trace.Attribute(node, tasks)
}
