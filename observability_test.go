package smistudy_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"smistudy"
	"smistudy/internal/obs"
)

// TestTracedNASRun is the end-to-end acceptance check for the
// observability bus: a lossy NAS run under long SMIs must put events of
// all five core categories on the bus (smm, sched, mpi, net, fault),
// derive non-trivial metrics, render a valid Chrome trace, and leave
// the measured result untouched.
func TestTracedNASRun(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	ring := obs.NewRingSink(1 << 18)
	bus := obs.NewBus().Attach(sink).Attach(ring)

	opts := smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 2, RanksPerNode: 2, SMM: smistudy.SMM2,
		Runs: 2, Seed: 1,
		Faults: &smistudy.FaultPlan{LossProb: 0.02},
	}
	traced := opts
	traced.Tracer = bus
	res, err := smistudy.RunNAS(traced)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Tracing must not perturb the simulation.
	plain, err := smistudy.RunNAS(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTime != plain.MeanTime || res.Dropped != plain.Dropped {
		t.Fatalf("tracing changed the result: %v/%d vs %v/%d",
			res.MeanTime, res.Dropped, plain.MeanTime, plain.Dropped)
	}

	cats := map[obs.Category]int{}
	runs := map[int32]bool{}
	for _, ev := range ring.Events() {
		cats[ev.Type.Category()]++
		runs[ev.Run] = true
	}
	for _, want := range []obs.Category{
		obs.CatSMM, obs.CatSched, obs.CatMPI, obs.CatNet, obs.CatFault, obs.CatSweep,
	} {
		if cats[want] == 0 {
			t.Errorf("no %v events on the bus (got %v)", want, cats)
		}
	}
	if !runs[0] || !runs[1] {
		t.Errorf("per-run stamping missing: %v", runs)
	}

	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome trace is not valid JSON")
	}

	snap := bus.MetricsSnapshot()
	if snap.Counter("smm_episodes", 0) == 0 {
		t.Error("no SMM episodes in metrics despite SMM2")
	}
	if snap.Counter("engine_events_fired", -1) == 0 {
		t.Error("engine probe not wired")
	}
	var sends int64
	for _, c := range snap.Counters {
		if c.Name == "mpi_sends" {
			sends += c.Value
		}
	}
	if sends == 0 {
		t.Error("no MPI sends in metrics")
	}
}

// TestTracedSweepDeterminism: running the same traced configuration with
// 1 and 4 workers must yield identical metrics snapshots — counters
// commute, and per-run stamping keeps the interleaving irrelevant.
func TestTracedSweepDeterminism(t *testing.T) {
	snapshot := func(workers int) []byte {
		bus := obs.NewBus()
		_, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
			Behavior: smistudy.CacheFriendly, CPUs: 2,
			SMIIntervalMS: 500, Runs: 4, Seed: 3,
			Workers: workers, Tracer: bus,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := bus.MetricsSnapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if seq, par := snapshot(1), snapshot(4); !bytes.Equal(seq, par) {
		t.Fatalf("metrics differ across worker counts:\n%s\n----\n%s", seq, par)
	}
}
