package smistudy_test

import (
	"fmt"

	"smistudy"
	"smistudy/internal/sim"
)

// Measure what one-per-second long SMIs do to an MPI job.
func ExampleRunNAS() {
	base, _ := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 1, RanksPerNode: 1, SMM: smistudy.SMM0,
	})
	noisy, _ := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 1, RanksPerNode: 1, SMM: smistudy.SMM2,
	})
	fmt.Printf("base %.1fs, with long SMIs %.1fs\n", base.Seconds(), noisy.Seconds())
	// Output: base 23.1s, with long SMIs 25.6s
}

// Detect SMIs from inside the machine, hwlat-style.
func ExampleDetectSMIs() {
	rep := smistudy.DetectSMIs(smistudy.DetectOptions{
		Level:         smistudy.SMM2,
		SMIIntervalMS: 1000,
		Duration:      5 * sim.Second,
	})
	fmt.Printf("matched %d, missed %d, false positives %d\n",
		rep.Matched, rep.Missed, rep.FalsePositives)
	// Output: matched 4, missed 0, false positives 0
}

// Quantify how much CPU time a profiler would silently misreport.
func ExampleAttributeNAS() {
	a := smistudy.AttributeNAS(1)
	fmt.Printf("%d tasks, stolen time > 0: %v\n", len(a.Tasks), a.TotalStolen > 0)
	// Output: 4 tasks, stolen time > 0: true
}

// Run the paper's cache-unfriendly Convolve configuration.
func ExampleRunConvolve() {
	res, _ := smistudy.RunConvolve(smistudy.ConvolveOptions{
		Behavior: smistudy.CacheUnfriendly, CPUs: 4, Passes: 2,
	})
	fmt.Printf("threads: %d (one per megapixel block)\n", res.Threads)
	// Output: threads: 16 (one per megapixel block)
}

// Measure an integrity-check agent's interference.
func ExampleRunRIM() {
	res, _ := smistudy.RunRIM(smistudy.RIMOptions{MegaBytes: 25})
	fmt.Printf("checks completed: %v, app slowed: %v\n",
		res.Checks > 0, res.NoisyTime > res.BaseTime)
	// Output: checks completed: true, app slowed: true
}
