package smistudy_test

import (
	"math"
	"testing"

	"smistudy"
	"smistudy/internal/sim"
)

func TestRunNASBasic(t *testing.T) {
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 1, RanksPerNode: 1, SMM: smistudy.SMM0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Seconds()-23.12) > 1 {
		t.Fatalf("EP.A solo = %.2fs, want ≈23.12", res.Seconds())
	}
	if res.Ranks != 1 || !res.Verified || res.MOPs <= 0 {
		t.Fatalf("result malformed: %+v", res)
	}
	if res.Residency != 0 {
		t.Fatal("SMM0 run accumulated residency")
	}
}

func TestRunNASMultiRunAveraging(t *testing.T) {
	res, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.EP, Class: smistudy.ClassA,
		Nodes: 2, RanksPerNode: 1, SMM: smistudy.SMM2, Runs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 3 {
		t.Fatalf("times = %d, want 3", len(res.Times))
	}
	if res.Residency <= 0 {
		t.Fatal("SMM2 run has no residency")
	}
}

func TestRunNASValidation(t *testing.T) {
	if _, err := smistudy.RunNAS(smistudy.NASOptions{Bench: smistudy.EP, Class: smistudy.ClassA}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := smistudy.RunNAS(smistudy.NASOptions{
		Bench: smistudy.BT, Class: smistudy.ClassA, Nodes: 2, RanksPerNode: 1,
	}); err == nil {
		t.Error("non-square BT accepted")
	}
}

func TestRunConvolve(t *testing.T) {
	res, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
		Behavior: smistudy.CacheUnfriendly, CPUs: 4, Passes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTime <= 0 || res.Threads != 16 {
		t.Fatalf("convolve result malformed: %+v", res)
	}
}

func TestRunConvolveWithSMIs(t *testing.T) {
	quiet, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
		Behavior: smistudy.CacheFriendly, CPUs: 4, Passes: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := smistudy.RunConvolve(smistudy.ConvolveOptions{
		Behavior: smistudy.CacheFriendly, CPUs: 4, Passes: 6, SMIIntervalMS: 200, Runs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MeanTime <= quiet.MeanTime {
		t.Fatalf("SMIs did not slow convolve: %v vs %v", noisy.MeanTime, quiet.MeanTime)
	}
	if len(noisy.Times) != 2 {
		t.Fatal("runs not honored")
	}
}

func TestRunConvolveValidation(t *testing.T) {
	if _, err := smistudy.RunConvolve(smistudy.ConvolveOptions{CPUs: 0}); err == nil {
		t.Error("0 CPUs accepted")
	}
	if _, err := smistudy.RunConvolve(smistudy.ConvolveOptions{CPUs: 9}); err == nil {
		t.Error("9 CPUs accepted")
	}
}

func TestCacheBehaviorString(t *testing.T) {
	if smistudy.CacheFriendly.String() != "CacheFriendly" ||
		smistudy.CacheUnfriendly.String() != "CacheUnfriendly" {
		t.Error("behavior strings wrong")
	}
}

func TestRunUnixBench(t *testing.T) {
	res, err := smistudy.RunUnixBench(smistudy.UnixBenchOptions{
		CPUs: 2, Duration: 500 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 || len(res.Tests) != 5 {
		t.Fatalf("unixbench result malformed: %+v", res)
	}
}

func TestRunUnixBenchValidation(t *testing.T) {
	if _, err := smistudy.RunUnixBench(smistudy.UnixBenchOptions{CPUs: 0}); err == nil {
		t.Error("0 CPUs accepted")
	}
}

func TestDetectSMIs(t *testing.T) {
	rep := smistudy.DetectSMIs(smistudy.DetectOptions{
		Level: smistudy.SMM2, SMIIntervalMS: 1000, Duration: 4 * sim.Second,
	})
	if rep.Matched < 2 {
		t.Fatalf("detector matched %d SMIs, want ≥2", rep.Matched)
	}
}

func TestAttributeNAS(t *testing.T) {
	a := smistudy.AttributeNAS(1)
	if len(a.Tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(a.Tasks))
	}
	if a.TotalStolen <= 0 {
		t.Fatal("no misattributed time under long SMIs")
	}
	if a.SMMResidency <= 0 {
		t.Fatal("no ground-truth residency")
	}
}

func TestLevelsExported(t *testing.T) {
	if smistudy.SMM0.String() != "SMM0" || smistudy.SMM1.String() != "SMM1" || smistudy.SMM2.String() != "SMM2" {
		t.Error("levels not wired through")
	}
}
